//===- core/ReturnCacheHandler.h - Dedicated return cache --------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct-mapped translation cache dedicated to returns. Returns are the
/// dominant IB class, their target sets are small and strongly correlated
/// with call sites, and condition codes are dead at function boundaries —
/// so a small unshared table probed without a flag save serves them better
/// than the general mechanism.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CORE_RETURNCACHEHANDLER_H
#define STRATAIB_CORE_RETURNCACHEHANDLER_H

#include "core/IBHandler.h"

#include <unordered_map>
#include <vector>

namespace sdt {
namespace core {

/// Return-cache mechanism (only ever bound to IBClass::Return sites).
class ReturnCacheHandler : public IBHandler {
public:
  explicit ReturnCacheHandler(const SdtOptions &Opts);

  const char *name() const override { return "return-cache"; }

  SiteCode emitSite(uint32_t SiteId, IBClass Class, uint32_t GuestPc,
                    FragmentCache &Cache,
                    bool SpeculativeFallback = false) override;

  LookupOutcome lookup(uint32_t SiteId, uint32_t GuestTarget,
                       arch::TimingModel *Timing) override;

  void record(uint32_t SiteId, uint32_t GuestTarget, uint32_t HostEntryAddr,
              arch::TimingModel *Timing) override;

  void flush() override;

  uint64_t invalidateEvicted(const EvictedRanges &Ranges, FragmentCache &Cache,
                             arch::TimingModel *Timing) override;

  std::string statsSummary() const override;

private:
  struct Entry {
    uint32_t GuestTag = 0;
    uint32_t HostEntryAddr = 0;
  };

  static constexpr uint32_t SiteBytes = 24;

  SdtOptions Opts;
  std::vector<Entry> Entries;
  std::unordered_map<uint32_t, uint32_t> SiteCodeAddr;
};

} // namespace core
} // namespace sdt

#endif // STRATAIB_CORE_RETURNCACHEHANDLER_H
