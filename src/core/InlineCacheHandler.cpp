//===- core/InlineCacheHandler.cpp -----------------------------*- C++ -*-===//
//
// Part of StrataIB. See InlineCacheHandler.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "core/InlineCacheHandler.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace sdt;
using namespace sdt::core;

InlineCacheHandler::InlineCacheHandler(const SdtOptions &Opts,
                                       std::unique_ptr<IBHandler> Backing)
    : Opts(Opts), Backing(std::move(Backing)) {
  assert(Opts.InlineCacheDepth > 0 && "inline cache with depth 0");
  assert(this->Backing && "inline cache needs a backing mechanism");
}

void InlineCacheHandler::initialize(FragmentCache &Cache) {
  Backing->initialize(Cache);
}

SiteCode InlineCacheHandler::emitSite(uint32_t SiteId, IBClass Class,
                                      uint32_t GuestPc, FragmentCache &Cache,
                                      bool SpeculativeFallback) {
  Site S;
  // A site behind a trace speculation guard never sees its monomorphic
  // target (the guard intercepts it), so inlined compares would only
  // burn bytes and cycles on the already-slow miss path.
  S.Depth = SpeculativeFallback ? 0 : Opts.InlineCacheDepth;
  uint32_t InlineBytes = 8 /*flag save*/ + S.Depth * EntryBytes;
  S.CodeAddr = Cache.allocateBytes(InlineBytes);
  Sites.emplace(SiteId, std::move(S));
  SiteCode BackingCode =
      Backing->emitSite(SiteId, Class, GuestPc, Cache, SpeculativeFallback);
  return {Sites.at(SiteId).CodeAddr, InlineBytes + BackingCode.Bytes};
}

LookupOutcome InlineCacheHandler::lookup(uint32_t SiteId,
                                         uint32_t GuestTarget,
                                         arch::TimingModel *Timing) {
  Site &S = Sites.at(SiteId);

  if (Timing)
    Timing->chargeFlagSave(arch::CycleCategory::IBLookup,
                           Opts.FullFlagSave);

  for (size_t I = 0, E = S.Entries.size(); I != E; ++I) {
    const InlineEntry &Entry = S.Entries[I];
    uint32_t EntryAddr = S.CodeAddr + 8 + static_cast<uint32_t>(I) *
                                              EntryBytes;
    bool Match = Entry.GuestTarget == GuestTarget;
    if (Timing) {
      Timing->chargeCodeRange(arch::CycleCategory::IBLookup, EntryAddr,
                              EntryBytes);
      // Materialise the predicted target, compare.
      Timing->chargeAluOps(arch::CycleCategory::IBLookup, 2);
      // The inlined compare is an ordinary conditional branch: highly
      // predictable at monomorphic sites, which is the whole point.
      Timing->chargeCondBranch(arch::CycleCategory::IBLookup, EntryAddr,
                               Match);
    }
    if (Match) {
      if (Timing) {
        Timing->chargeFlagRestore(arch::CycleCategory::IBLookup,
                                  Opts.FullFlagSave);
        // Straight to the fragment.
        Timing->chargeDirectJump(arch::CycleCategory::IBLookup);
      }
      ++InlineHits;
      countLookup(/*Hit=*/true, SiteId, GuestTarget);
      return {true, Entry.HostEntryAddr};
    }
  }

  LookupOutcome Outcome = Backing->lookup(SiteId, GuestTarget, Timing);
  countLookup(Outcome.Hit, SiteId, GuestTarget);
  return Outcome;
}

void InlineCacheHandler::record(uint32_t SiteId, uint32_t GuestTarget,
                                uint32_t HostEntryAddr,
                                arch::TimingModel *Timing) {
  Site &S = Sites.at(SiteId);
  if (S.Entries.size() < S.Depth) {
    S.Entries.push_back({GuestTarget, HostEntryAddr});
    if (Timing) {
      // Patching the inline compare's immediate and jump target.
      uint32_t EntryAddr =
          S.CodeAddr + 8 +
          static_cast<uint32_t>(S.Entries.size() - 1) * EntryBytes;
      Timing->chargeStore(arch::CycleCategory::IBLookup, EntryAddr);
      Timing->chargeStore(arch::CycleCategory::IBLookup, EntryAddr + 4);
    }
    return;
  }
  Backing->record(SiteId, GuestTarget, HostEntryAddr, Timing);
}

void InlineCacheHandler::flush() {
  Sites.clear();
  Backing->flush();
}

uint64_t InlineCacheHandler::invalidateEvicted(const EvictedRanges &Ranges,
                                               FragmentCache &Cache,
                                               arch::TimingModel *Timing) {
  uint64_t Cleared = 0;
  for (auto &[SiteId, S] : Sites) {
    for (size_t I = S.Entries.size(); I-- > 0;) {
      if (!Ranges.contains(S.Entries[I].HostEntryAddr))
        continue;
      if (Timing) {
        // Neutralise the inlined compare (patch its branch dead).
        uint32_t EntryAddr =
            S.CodeAddr + 8 + static_cast<uint32_t>(I) * EntryBytes;
        Timing->chargeStore(arch::CycleCategory::IBLookup, EntryAddr);
      }
      S.Entries.erase(S.Entries.begin() + static_cast<ptrdiff_t>(I));
      ++Cleared;
    }
  }
  return Cleared + Backing->invalidateEvicted(Ranges, Cache, Timing);
}

std::string InlineCacheHandler::statsSummary() const {
  std::string Out = formatString(
      "inline-cache: depth %u, lookups=%llu inline-hits=%llu (%.2f%%)\n",
      Opts.InlineCacheDepth, static_cast<unsigned long long>(lookups()),
      static_cast<unsigned long long>(InlineHits),
      lookups() ? 100.0 * static_cast<double>(InlineHits) /
                      static_cast<double>(lookups())
                : 0.0);
  Out += Backing->statsSummary();
  return Out;
}
