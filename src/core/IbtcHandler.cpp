//===- core/IbtcHandler.cpp ------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See IbtcHandler.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "core/IbtcHandler.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace sdt;
using namespace sdt::core;

IbtcHandler::IbtcHandler(const SdtOptions &Opts, bool ChargeFlagSave)
    : Opts(Opts), ChargeFlagSave(ChargeFlagSave) {
  assert(isPowerOf2(Opts.IbtcEntries) && "IBTC size must be a power of two");
  assert(isPowerOf2(Opts.IbtcAssociativity) &&
         Opts.IbtcAssociativity <= Opts.IbtcEntries &&
         "bad IBTC associativity");
  // Inline probe: flag save/restore + hash + address arithmetic + tagged
  // load + compare + jump + miss trampoline; each extra way adds a
  // compare-and-branch.
  InlineBytes = 40 + 12 * (Opts.IbtcAssociativity - 1);
  Shared = makeTable(Opts.IbtcEntries);
}

IbtcHandler::Table IbtcHandler::makeTable(uint32_t Capacity) {
  Table T;
  T.DataAddr = DataCursor;
  T.Capacity = Capacity;
  DataCursor += Capacity * 8; // 8 bytes per (tag, target) entry.
  T.Entries.assign(Capacity, Entry());
  return T;
}


IbtcHandler::Table &IbtcHandler::tableFor(uint32_t SiteId) {
  if (Opts.IbtcShared)
    return Shared;
  auto It = PerSite.find(SiteId);
  assert(It != PerSite.end() && "lookup at unregistered IBTC site");
  return It->second;
}

size_t IbtcHandler::tableCount() const {
  return Opts.IbtcShared ? 1 : PerSite.size();
}

SiteCode IbtcHandler::emitSite(uint32_t SiteId, IBClass Class,
                               uint32_t GuestPc, FragmentCache &Cache,
                               bool SpeculativeFallback) {
  (void)Class;
  (void)GuestPc;
  (void)SpeculativeFallback; // Table lookup code is the same either way.
  uint32_t Addr = Cache.allocateBytes(InlineBytes);
  SiteCodeAddr[SiteId] = Addr;
  if (!Opts.IbtcShared)
    PerSite.emplace(SiteId, makeTable(Opts.IbtcEntries));
  return {Addr, InlineBytes};
}

LookupOutcome IbtcHandler::lookup(uint32_t SiteId, uint32_t GuestTarget,
                                  arch::TimingModel *Timing) {
  Table &T = tableFor(SiteId);
  uint32_t Assoc = Opts.IbtcAssociativity;
  uint32_t Set = hashAddress(Opts.IbtcHash, GuestTarget, T.numSets(Assoc));
  uint32_t SetBase = Set * Assoc;
  uint32_t SiteAddr = SiteCodeAddr.at(SiteId);

  if (Timing) {
    // The site's inline code beyond the first host word.
    Timing->chargeCodeRange(arch::CycleCategory::IBLookup, SiteAddr + 4,
                              InlineBytes - 4);
    if (ChargeFlagSave)
      Timing->chargeFlagSave(arch::CycleCategory::IBLookup,
                             Opts.FullFlagSave);
    Timing->chargeAluOps(arch::CycleCategory::IBLookup,
                         hashAluOpCount(Opts.IbtcHash) + 1); // + addr calc
  }

  for (uint32_t Way = 0; Way != Assoc; ++Way) {
    uint32_t EntryAddr = T.DataAddr + (SetBase + Way) * 8;
    if (Timing) {
      Timing->chargeLoad(arch::CycleCategory::IBLookup, EntryAddr); // tag
      Timing->chargeAluOps(arch::CycleCategory::IBLookup, 1);       // compare
    }
    Entry &E = T.Entries[SetBase + Way];
    if (E.GuestTag == GuestTarget) {
      E.LastUse = ++Clock;
      if (Timing) {
        Timing->chargeLoad(arch::CycleCategory::IBLookup,
                           EntryAddr + 4); // translated target
        if (ChargeFlagSave)
          Timing->chargeFlagRestore(arch::CycleCategory::IBLookup,
                                    Opts.FullFlagSave);
        Timing->chargeIndirectJump(arch::CycleCategory::IBLookup, SiteAddr,
                                   E.HostEntryAddr);
      }
      countLookup(/*Hit=*/true, SiteId, GuestTarget);
      return {true, E.HostEntryAddr};
    }
  }
  countLookup(/*Hit=*/false, SiteId, GuestTarget);
  return {};
}

void IbtcHandler::record(uint32_t SiteId, uint32_t GuestTarget,
                         uint32_t HostEntryAddr, arch::TimingModel *Timing) {
  Table &T = tableFor(SiteId);
  uint32_t Assoc = Opts.IbtcAssociativity;
  uint32_t SetBase =
      hashAddress(Opts.IbtcHash, GuestTarget, T.numSets(Assoc)) * Assoc;

  // Prefer: existing entry for this target, then an empty way, then the
  // LRU way.
  Entry *Victim = nullptr;
  for (uint32_t Way = 0; Way != Assoc && !Victim; ++Way)
    if (T.Entries[SetBase + Way].GuestTag == GuestTarget)
      Victim = &T.Entries[SetBase + Way];
  for (uint32_t Way = 0; Way != Assoc && !Victim; ++Way)
    if (T.Entries[SetBase + Way].GuestTag == 0)
      Victim = &T.Entries[SetBase + Way];
  if (!Victim) {
    Victim = &T.Entries[SetBase];
    for (uint32_t Way = 1; Way != Assoc; ++Way)
      if (T.Entries[SetBase + Way].LastUse < Victim->LastUse)
        Victim = &T.Entries[SetBase + Way];
  }
  if (Victim->GuestTag != 0 && Victim->GuestTag != GuestTarget) {
    ++Replacements;
    ++T.ReplacementsSinceResize;
  }
  Victim->GuestTag = GuestTarget;
  Victim->HostEntryAddr = HostEntryAddr;
  Victim->LastUse = ++Clock;
  if (Timing) {
    uint32_t EntryAddr =
        T.DataAddr +
        static_cast<uint32_t>(Victim - T.Entries.data()) * 8;
    Timing->chargeStore(arch::CycleCategory::IBLookup, EntryAddr);
    Timing->chargeStore(arch::CycleCategory::IBLookup, EntryAddr + 4);
  }

  if (Opts.IbtcAdaptive &&
      T.ReplacementsSinceResize > T.Capacity / 4 &&
      T.Capacity * 4 <= Opts.IbtcMaxEntries)
    growTable(T, Timing);
}

void IbtcHandler::growTable(Table &T, arch::TimingModel *Timing) {
  uint32_t Assoc = Opts.IbtcAssociativity;
  std::vector<Entry> Live;
  for (const Entry &E : T.Entries)
    if (E.GuestTag != 0)
      Live.push_back(E);

  uint32_t OldAddr = T.DataAddr;
  T.Capacity *= 4;
  T.DataAddr = DataCursor;
  DataCursor += T.Capacity * 8;
  T.Entries.assign(T.Capacity, Entry());
  T.ReplacementsSinceResize = 0;
  ++Resizes;

  // Rehash the survivors into the bigger table.
  uint32_t Index = 0;
  for (const Entry &E : Live) {
    uint32_t SetBase =
        hashAddress(Opts.IbtcHash, E.GuestTag, T.numSets(Assoc)) * Assoc;
    Entry *Slot = nullptr;
    for (uint32_t Way = 0; Way != Assoc && !Slot; ++Way)
      if (T.Entries[SetBase + Way].GuestTag == 0)
        Slot = &T.Entries[SetBase + Way];
    if (!Slot)
      Slot = &T.Entries[SetBase]; // Conflict even after growth: drop one.
    *Slot = E;
    if (Timing) {
      Timing->chargeLoad(arch::CycleCategory::IBLookup, OldAddr + Index * 8);
      uint32_t NewAddr =
          T.DataAddr + static_cast<uint32_t>(Slot - T.Entries.data()) * 8;
      Timing->chargeStore(arch::CycleCategory::IBLookup, NewAddr);
      Timing->chargeStore(arch::CycleCategory::IBLookup, NewAddr + 4);
    }
    ++Index;
  }
  // Every IB site's inline mask constant gets patched to the new size.
  if (Timing)
    Timing->chargeLinkPatch(arch::CycleCategory::IBLookup);
}

void IbtcHandler::flush() {
  Shared = makeTable(Opts.IbtcEntries);
  PerSite.clear();
  SiteCodeAddr.clear();
}

uint64_t IbtcHandler::invalidateEvicted(const EvictedRanges &Ranges,
                                        FragmentCache &Cache,
                                        arch::TimingModel *Timing) {
  (void)Cache; // Tables are data-resident; nothing to return to the cache.
  uint64_t Cleared = 0;
  auto ClearTable = [&](Table &T) {
    for (uint32_t I = 0; I != T.Capacity; ++I) {
      Entry &E = T.Entries[I];
      if (E.GuestTag == 0 || !Ranges.contains(E.HostEntryAddr))
        continue;
      E = Entry();
      ++Cleared;
      if (Timing)
        Timing->chargeStore(arch::CycleCategory::IBLookup, T.DataAddr + I * 8);
    }
  };
  if (Opts.IbtcShared)
    ClearTable(Shared);
  else
    for (auto &[SiteId, T] : PerSite)
      ClearTable(T);
  return Cleared;
}

void IbtcHandler::exportSharedTargets(
    std::vector<uint32_t> &GuestTargets) const {
  if (!Opts.IbtcShared)
    return; // Per-site keys (site ids) do not survive an engine lifetime.
  for (const Entry &E : Shared.Entries)
    if (E.GuestTag != 0)
      GuestTargets.push_back(E.GuestTag);
}

bool IbtcHandler::importSharedTarget(uint32_t GuestTarget,
                                     uint32_t HostEntryAddr,
                                     arch::TimingModel *Timing) {
  if (!Opts.IbtcShared)
    return false;
  record(/*SiteId=*/0, GuestTarget, HostEntryAddr, Timing);
  return true;
}

uint32_t IbtcHandler::currentCapacity() const {
  if (Opts.IbtcShared)
    return Shared.Capacity;
  return PerSite.empty() ? Opts.IbtcEntries
                         : PerSite.begin()->second.Capacity;
}

std::string IbtcHandler::statsSummary() const {
  return formatString(
      "ibtc: %s, %u entries/table, %zu table(s), lookups=%llu "
      "hits=%llu (%.2f%%) replacements=%llu resizes=%llu",
      Opts.IbtcShared ? "shared" : "private", currentCapacity(),
      tableCount(),
      static_cast<unsigned long long>(lookups()),
      static_cast<unsigned long long>(hits()),
      lookups() ? 100.0 * static_cast<double>(hits()) /
                      static_cast<double>(lookups())
                : 0.0,
      static_cast<unsigned long long>(Replacements),
      static_cast<unsigned long long>(Resizes));
}
