//===- core/SieveHandler.cpp -----------------------------------*- C++ -*-===//
//
// Part of StrataIB. See SieveHandler.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "core/SieveHandler.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace sdt;
using namespace sdt::core;

SieveHandler::SieveHandler(const SdtOptions &Opts, bool ChargeFlagSave)
    : Opts(Opts), ChargeFlagSave(ChargeFlagSave) {
  assert(isPowerOf2(Opts.SieveBuckets) &&
         "sieve bucket count must be a power of two");
  Buckets.resize(Opts.SieveBuckets);
}

void SieveHandler::initialize(FragmentCache &Cache) {
  this->Cache = &Cache;
  // The bucket headers are code: a table of jump slots the site's computed
  // jump lands in, each initially a trampoline to the dispatcher.
  HeadersAddr = Cache.allocateBytes(Opts.SieveBuckets * HeaderBytes);
}

SiteCode SieveHandler::emitSite(uint32_t SiteId, IBClass Class,
                                uint32_t GuestPc, FragmentCache &Cache,
                                bool SpeculativeFallback) {
  (void)Class;
  (void)GuestPc;
  (void)SpeculativeFallback; // The computed jump into the sieve is fixed.
  uint32_t Addr = Cache.allocateBytes(SiteBytes);
  SiteCodeAddr[SiteId] = Addr;
  return {Addr, SiteBytes};
}

LookupOutcome SieveHandler::lookup(uint32_t SiteId, uint32_t GuestTarget,
                                   arch::TimingModel *Timing) {
  uint32_t Bucket =
      hashAddress(Opts.SieveHash, GuestTarget, Opts.SieveBuckets);
  uint32_t SiteAddr = SiteCodeAddr.at(SiteId);
  uint32_t HeaderAddr = HeadersAddr + Bucket * HeaderBytes;

  if (Timing) {
    Timing->chargeCodeRange(arch::CycleCategory::IBLookup, SiteAddr + 4,
                            SiteBytes - 4);
    if (ChargeFlagSave)
      Timing->chargeFlagSave(arch::CycleCategory::IBLookup,
                             Opts.FullFlagSave);
    Timing->chargeAluOps(arch::CycleCategory::IBLookup,
                         hashAluOpCount(Opts.SieveHash) + 1); // + addr calc
    // The computed jump into the bucket header (an indirect branch the
    // BTB must predict).
    Timing->chargeIndirectJump(arch::CycleCategory::IBLookup, SiteAddr,
                               HeaderAddr);
    Timing->chargeCodeRange(arch::CycleCategory::IBLookup, HeaderAddr,
                            HeaderBytes);
  }

  const std::vector<Stub> &Chain = Buckets[Bucket];
  for (size_t I = 0, E = Chain.size(); I != E; ++I) {
    const Stub &S = Chain[I];
    bool Match = S.GuestTarget == GuestTarget;
    if (Timing) {
      // One compare-and-branch stub: fetch, materialise/compare the tag
      // (per-machine op count), then a *conditional* branch the
      // predictor must get right — chain walks are mispredict-prone.
      Timing->chargeCodeRange(arch::CycleCategory::IBLookup, S.StubAddr,
                              StubBytes);
      Timing->chargeAluOps(arch::CycleCategory::IBLookup,
                           Timing->model().SieveStubOps);
      Timing->chargeCondBranch(arch::CycleCategory::IBLookup, S.StubAddr,
                               Match);
    }
    if (Match) {
      if (Timing) {
        if (ChargeFlagSave)
          Timing->chargeFlagRestore(arch::CycleCategory::IBLookup,
                                    Opts.FullFlagSave);
        // Stub jumps straight to the fragment.
        Timing->chargeDirectJump(arch::CycleCategory::IBLookup);
      }
      ChainLengths.addSample(I + 1);
      countLookup(/*Hit=*/true, SiteId, GuestTarget);
      return {true, S.HostEntryAddr};
    }
  }

  // Chain exhausted: the final fall-through trampolines to the dispatcher.
  if (Timing)
    Timing->chargeDirectJump(arch::CycleCategory::IBLookup);
  ChainLengths.addSample(Chain.size());
  countLookup(/*Hit=*/false, SiteId, GuestTarget);
  return {};
}

void SieveHandler::record(uint32_t SiteId, uint32_t GuestTarget,
                          uint32_t HostEntryAddr,
                          arch::TimingModel *Timing) {
  (void)SiteId;
  assert(Cache && "sieve used before initialize()");
  uint32_t Bucket =
      hashAddress(Opts.SieveHash, GuestTarget, Opts.SieveBuckets);

  // Avoid duplicate stubs for the same target (can happen when multiple
  // sites miss on the same target before any stub exists).
  for (const Stub &S : Buckets[Bucket])
    if (S.GuestTarget == GuestTarget)
      return;

  Stub S;
  S.GuestTarget = GuestTarget;
  S.HostEntryAddr = HostEntryAddr;
  S.StubAddr = Cache->allocateBytes(StubBytes);
  Buckets[Bucket].push_back(S);
  ++Stubs;

  if (Timing) {
    // Writing the stub into the code cache (code is data to the writer).
    Timing->chargeStore(arch::CycleCategory::IBLookup, S.StubAddr);
    Timing->chargeStore(arch::CycleCategory::IBLookup, S.StubAddr + 4);
    Timing->chargeStore(arch::CycleCategory::IBLookup, S.StubAddr + 8);
  }
}

void SieveHandler::flush() {
  for (std::vector<Stub> &B : Buckets)
    B.clear();
  SiteCodeAddr.clear();
  Stubs = 0;
  // initialize() reallocates the headers after the cache flush.
}

uint64_t SieveHandler::invalidateEvicted(const EvictedRanges &Ranges,
                                         FragmentCache &Cache,
                                         arch::TimingModel *Timing) {
  // Stale stubs must be unchained: a stub jumps straight to its
  // translated fragment, so a stub whose target was evicted would jump
  // into freed code. Unchaining rewrites the predecessor's fall-through
  // (one store per removed stub) and returns the stub's bytes to the
  // capacity budget. The headers and surviving stubs stay where they
  // are — their addresses are planted in fragment code.
  uint64_t Removed = 0;
  for (std::vector<Stub> &B : Buckets) {
    for (size_t I = B.size(); I-- > 0;) {
      const Stub &S = B[I];
      if (!Ranges.contains(S.HostEntryAddr))
        continue;
      if (Timing)
        Timing->chargeStore(arch::CycleCategory::IBLookup, S.StubAddr);
      Cache.releaseBytes(StubBytes);
      B.erase(B.begin() + static_cast<ptrdiff_t>(I));
      --Stubs;
      ++Removed;
    }
  }
  return Removed;
}

std::string SieveHandler::statsSummary() const {
  return formatString(
      "sieve: %u buckets, stubs=%llu, lookups=%llu hits=%llu (%.2f%%), "
      "mean chain=%.2f",
      Opts.SieveBuckets, static_cast<unsigned long long>(Stubs),
      static_cast<unsigned long long>(lookups()),
      static_cast<unsigned long long>(hits()),
      lookups() ? 100.0 * static_cast<double>(hits()) /
                      static_cast<double>(lookups())
                : 0.0,
      ChainLengths.mean());
}
