//===- core/IBHandler.h - IB translation mechanism interface -----*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strategy interface every indirect-branch handling mechanism
/// implements. The SDT engine calls:
///
///  - emitSite() when the translator reaches an indirect branch, so the
///    mechanism can lay down its inline lookup code (and per-site data);
///  - lookup() when that site executes, to translate the dynamic guest
///    target into a fragment-cache entry address — charging the timing
///    model for exactly the work its inline sequence would do;
///  - record() after a dispatcher-resolved miss, to install the new
///    (guest target → translated target) mapping.
///
/// This mirrors how Strata-style SDTs plug IB mechanisms into fragment
/// emission.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CORE_IBHANDLER_H
#define STRATAIB_CORE_IBHANDLER_H

#include "arch/Timing.h"
#include "core/FragmentCache.h"
#include "core/SdtOptions.h"
#include "trace/TraceSink.h"

#include <cstdint>
#include <string>

namespace sdt {
namespace core {

/// Simulated address regions for mechanism-owned *data* structures (the
/// IBTC and return-cache tables live in data space; the sieve's structures
/// live in the fragment cache, i.e. code space — that asymmetry is the
/// paper's D-cache vs. I-cache story).
inline constexpr uint32_t IbtcTableRegionBase = 0x60000000;
inline constexpr uint32_t ReturnCacheRegionBase = 0x68000000;
inline constexpr uint32_t ShadowStackRegionBase = 0x6C000000;
inline constexpr uint32_t BlockCounterRegionBase = 0x70000000;

/// Result of an inline lookup.
struct LookupOutcome {
  bool Hit = false;
  uint32_t HostEntryAddr = 0; ///< Valid when Hit.
};

/// Footprint of a site's inline lookup code.
struct SiteCode {
  uint32_t Addr = 0;
  uint32_t Bytes = 0;
};

/// Abstract IB translation mechanism.
class IBHandler {
public:
  virtual ~IBHandler();

  /// Mechanism name for reports.
  virtual const char *name() const = 0;

  /// One-time (and post-flush) setup; mechanisms that keep code-resident
  /// structures allocate them from \p Cache here.
  virtual void initialize(FragmentCache &Cache);

  /// Emits the inline lookup sequence for a new IB site and returns its
  /// code footprint (allocated from \p Cache). \p SpeculativeFallback
  /// marks a site that sits behind a trace speculation guard and only
  /// executes on guard misses — mechanisms may emit a slimmer sequence
  /// (the guard already covers the monomorphic fast path).
  virtual SiteCode emitSite(uint32_t SiteId, IBClass Class, uint32_t GuestPc,
                            FragmentCache &Cache,
                            bool SpeculativeFallback = false) = 0;

  /// Executes the inline lookup for \p SiteId on dynamic target
  /// \p GuestTarget. Charges \p Timing (may be null for untimed runs) for
  /// the inline work. On a miss the engine runs the dispatcher and then
  /// calls record().
  virtual LookupOutcome lookup(uint32_t SiteId, uint32_t GuestTarget,
                               arch::TimingModel *Timing) = 0;

  /// Installs a dispatcher-resolved mapping for a missed lookup.
  virtual void record(uint32_t SiteId, uint32_t GuestTarget,
                      uint32_t HostEntryAddr, arch::TimingModel *Timing) = 0;

  /// Drops all mechanism state (the fragment cache was flushed; every
  /// translated address is stale). initialize() runs again afterwards.
  virtual void flush() = 0;

  /// Invalidates every cached translated-target pointer that lies inside
  /// the freed \p Ranges after a partial eviction, charging \p Timing for
  /// the stores that clear them. Unlike flush(), all other state (tables,
  /// site code, code-resident structures outside the ranges) survives.
  /// Returns the number of pointers invalidated. The default (stateless
  /// mechanisms, e.g. the dispatcher) has nothing to do.
  virtual uint64_t invalidateEvicted(const EvictedRanges &Ranges,
                                     FragmentCache &Cache,
                                     arch::TimingModel *Timing) {
    (void)Ranges;
    (void)Cache;
    (void)Timing;
    return 0;
  }

  /// Multi-line human-readable statistics for reports (may be empty).
  virtual std::string statsSummary() const;

  // --- Common counters ----------------------------------------------------
  uint64_t lookups() const { return Lookups; }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Lookups - Hits; }

  /// Attaches (or detaches, with null) the engine's trace sink and
  /// interns this mechanism's name once, so per-lookup recording is an
  /// indexed bump instead of a per-event strcmp scan. Wrapping mechanisms
  /// (inline caches) forward this to their backing handler.
  virtual void setTraceSink(trace::TraceSink *S) {
    Sink = S;
    if (S)
      MechId = S->internMech(name());
  }

  /// The wrapped backing mechanism when this handler is a wrapper (the
  /// inline cache); null otherwise. Lets callers enumerate every
  /// event-emitting mechanism without knowing the wrapping structure.
  virtual IBHandler *backingHandler() { return nullptr; }

  // --- Warm-start snapshots (src/service; SdtEngine::prewarm) -------------

  /// Appends every guest target held in this mechanism's *shared* target
  /// table to \p GuestTargets. Only mappings keyed purely by guest target
  /// (the shared IBTC) are snapshot-portable; per-site tables, sieve
  /// stubs, return caches, and inline-cache slots key on site ids or stub
  /// addresses that are not stable across engine lifetimes, so they are
  /// rebuilt cold. The default exports nothing.
  virtual void exportSharedTargets(std::vector<uint32_t> &GuestTargets) const {
    (void)GuestTargets;
  }

  /// Installs one rehydrated shared-table mapping (guest target → its
  /// re-translated fragment entry). Returns false when this mechanism has
  /// no shared table — the caller skips the snapshot entry.
  virtual bool importSharedTarget(uint32_t GuestTarget, uint32_t HostEntryAddr,
                                  arch::TimingModel *Timing) {
    (void)GuestTarget;
    (void)HostEntryAddr;
    (void)Timing;
    return false;
  }

protected:
  void countLookup(bool Hit, uint32_t SiteId, uint32_t GuestTarget) {
    ++Lookups;
    if (Hit)
      ++Hits;
    if (Sink)
      Sink->record(Hit ? trace::EventKind::IBLookupHit
                       : trace::EventKind::IBLookupMiss,
                   SiteId, GuestTarget, MechId);
  }

  trace::TraceSink *Sink = nullptr; ///< Null when tracing is off.
  uint16_t MechId = 0; ///< Interned name id; valid while Sink is set.

private:
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
};

} // namespace core
} // namespace sdt

#endif // STRATAIB_CORE_IBHANDLER_H
