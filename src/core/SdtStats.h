//===- core/SdtStats.h - SDT event accounting --------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Event counters the SDT engine maintains: translation volume, dispatcher
/// entries, link patches, and per-class indirect-branch executions and
/// inline-hit counts — the numerators and denominators of every table in
/// the evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CORE_SDTSTATS_H
#define STRATAIB_CORE_SDTSTATS_H

#include "core/SdtOptions.h"

#include <array>
#include <cstdint>

namespace sdt {
namespace core {

/// Engine-level event counters.
struct SdtStats {
  uint64_t FragmentsTranslated = 0;
  uint64_t GuestInstrsTranslated = 0;
  /// Full cache flushes (every fragment dropped at once).
  uint64_t Flushes = 0;
  /// Partial evictions performed by a bounded-cache policy (each one
  /// tombstones a victim set and invalidates the referencing structures).
  uint64_t PartialEvictions = 0;
  /// Total simulated code bytes freed by partial evictions.
  uint64_t EvictedBytes = 0;
  /// Fragments re-translated for a guest entry that a policy had
  /// previously freed (by eviction or flush) — the thrash metric E14
  /// compares policies on.
  uint64_t RetranslationsAfterEviction = 0;
  /// Direct links reverted to dispatcher stubs because their target
  /// fragment was evicted.
  uint64_t LinksUnlinked = 0;
  /// Detected guest writes into the decoded code range that triggered an
  /// invalidation pass (self-modifying code coherence).
  uint64_t CodeWriteInvalidations = 0;
  /// Fragments discarded because a guest write dirtied their source range.
  uint64_t FragmentsInvalidatedByWrite = 0;
  /// Simulated code bytes those invalidated fragments occupied.
  uint64_t StaleBytesDiscarded = 0;
  /// Slow-path entries (context switch + map lookup): initial entry,
  /// unlinked stubs, and IB-lookup misses.
  uint64_t DispatchEntries = 0;
  uint64_t LinksPatched = 0;
  uint64_t Syscalls = 0;

  /// Dynamic executions per IB class (Jump/Call/Return by IBClass value).
  std::array<uint64_t, NumIBClasses> IBExecs{};
  /// Executions resolved by the inline mechanism (no dispatcher).
  std::array<uint64_t, NumIBClasses> IBInlineHits{};

  /// Returns taken directly through a translated (fast-return) address.
  uint64_t FastReturnDirect = 0;
  /// Returns whose link value was still a guest address (transparency
  /// fallback to the general mechanism).
  uint64_t FastReturnFallback = 0;

  /// Hot-path traces built (EnableTraces).
  uint64_t TracesBuilt = 0;
  /// Guest instructions translated into traces (also included in
  /// GuestInstrsTranslated).
  uint64_t TraceGuestInstrs = 0;

  // --- Superblock optimizer (OptimizeTraces) ----------------------------
  /// Traces the pass pipeline ran over (one per optimized buildTrace).
  uint64_t TracesOptimized = 0;
  /// Elided-jump glue ops removed from trace streams.
  uint64_t TraceGlueElided = 0;
  /// Guest ALU ops folded to constant materialisations.
  uint64_t TraceConstFolds = 0;
  /// Dead link-register stores eliminated.
  uint64_t TraceDeadLinks = 0;
  /// Off-trace stubs moved out of the hot straight-line path.
  uint64_t TraceStubsOutlined = 0;
  /// Flag save/restore pairs shared between adjacent guards.
  uint64_t TraceFlagPairsElided = 0;

  // --- Speculative IB inlining (TraceSpeculate) -------------------------
  /// Guards emitted into traces (one per speculated IB crossing).
  uint64_t SpecGuardsEmitted = 0;
  /// Guard executions where the prediction held (stayed on trace).
  uint64_t SpecGuardHits = 0;
  /// Guard executions that fell back to the bound IB mechanism.
  uint64_t SpecGuardMisses = 0;

  /// Host ops the optimizer removed or de-materialised, total.
  uint64_t traceInstrsEliminated() const {
    return TraceGlueElided + TraceDeadLinks + TraceFlagPairsElided;
  }

  /// Fraction of guard executions that stayed on trace.
  double specGuardHitRate() const {
    uint64_t Total = SpecGuardHits + SpecGuardMisses;
    return Total ? static_cast<double>(SpecGuardHits) /
                       static_cast<double>(Total)
                 : 0.0;
  }

  // --- Warm-start snapshots (src/service; SdtEngine::prewarm) -----------
  /// Successful prewarm() calls (0 on a cold run, 1 on a warm one).
  uint64_t SnapshotLoads = 0;
  /// Fragments rehydrated from a snapshot before the run started.
  uint64_t RehydratedFragments = 0;
  /// Simulated code bytes those rehydrated fragments occupy.
  uint64_t RehydratedBytes = 0;
  /// Shared-table IB mappings reinstalled from a snapshot.
  uint64_t RehydratedIbtcEntries = 0;
  /// Snapshot entries skipped because the granted cache filled (partial
  /// warm start) or the entry no longer translated.
  uint64_t RehydrationsSkipped = 0;

  /// Returns served by the shadow stack's top entry.
  uint64_t ShadowStackHits = 0;
  /// Returns whose target did not match the shadow-stack top (or found
  /// it empty/stale) and fell back to the general mechanism.
  uint64_t ShadowStackMisses = 0;

  uint64_t ibExecTotal() const {
    return IBExecs[0] + IBExecs[1] + IBExecs[2];
  }

  /// Fraction of class-\p C executions served without the dispatcher.
  /// Fast-return and shadow-stack hits count for the Return class.
  double inlineHitRate(IBClass C) const {
    uint64_t Execs = IBExecs[static_cast<size_t>(C)];
    if (Execs == 0)
      return 0.0;
    uint64_t Hits = IBInlineHits[static_cast<size_t>(C)];
    if (C == IBClass::Return)
      Hits += FastReturnDirect + ShadowStackHits;
    return static_cast<double>(Hits) / static_cast<double>(Execs);
  }
};

} // namespace core
} // namespace sdt

#endif // STRATAIB_CORE_SDTSTATS_H
