//===- core/IbtcHandler.h - Indirect Branch Translation Cache ----*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IBTC: a data-resident, direct-mapped hash table of
/// (guest target → translated target) pairs, probed by inline code at each
/// IB site. The paper's central mechanism, with its three configuration
/// axes: table size, shared vs. per-site (private) tables, and the cost of
/// preserving condition codes around the probe (full vs. light flag save).
///
/// Modeled inline sequence per lookup (charged against the timing model):
///   flag save; hash (shift/mask or variant); load entry tag; compare;
///   [hit] load translated target, indirect jump, flag restore;
///   [miss] trampoline to dispatcher (engine charges the context switch).
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CORE_IBTCHANDLER_H
#define STRATAIB_CORE_IBTCHANDLER_H

#include "core/IBHandler.h"

#include <unordered_map>
#include <vector>

namespace sdt {
namespace core {

/// IBTC mechanism (shared or private tables).
class IbtcHandler : public IBHandler {
public:
  /// \p ChargeFlagSave is false when a wrapping mechanism (inline cache)
  /// already saved the condition codes.
  IbtcHandler(const SdtOptions &Opts, bool ChargeFlagSave = true);

  const char *name() const override { return "ibtc"; }

  SiteCode emitSite(uint32_t SiteId, IBClass Class, uint32_t GuestPc,
                    FragmentCache &Cache,
                    bool SpeculativeFallback = false) override;

  LookupOutcome lookup(uint32_t SiteId, uint32_t GuestTarget,
                       arch::TimingModel *Timing) override;

  void record(uint32_t SiteId, uint32_t GuestTarget, uint32_t HostEntryAddr,
              arch::TimingModel *Timing) override;

  void flush() override;

  uint64_t invalidateEvicted(const EvictedRanges &Ranges, FragmentCache &Cache,
                             arch::TimingModel *Timing) override;

  std::string statsSummary() const override;

  /// Shared-table mappings are keyed purely by guest target, so they are
  /// snapshot-portable (per-site tables are not; they export nothing).
  void exportSharedTargets(std::vector<uint32_t> &GuestTargets) const override;

  /// Reinstalls a mapping into the shared table (a plain record()).
  /// False in per-site mode.
  bool importSharedTarget(uint32_t GuestTarget, uint32_t HostEntryAddr,
                          arch::TimingModel *Timing) override;

  /// Entries replaced while holding a different valid tag (conflicts).
  uint64_t replacements() const { return Replacements; }
  /// Number of tables currently allocated (1 when shared).
  size_t tableCount() const;
  /// Adaptive-mode table growth events.
  uint64_t resizes() const { return Resizes; }
  /// Current capacity of the shared table (or the first per-site table).
  uint32_t currentCapacity() const;

private:
  struct Entry {
    uint32_t GuestTag = 0; ///< 0 = empty (page 0 is never code).
    uint32_t HostEntryAddr = 0;
    uint64_t LastUse = 0; ///< For LRU replacement within a set.
  };

  struct Table {
    uint32_t DataAddr = 0; ///< Simulated base address (D-cache modeling).
    uint32_t Capacity = 0; ///< Current entry count (grows when adaptive).
    uint32_t ReplacementsSinceResize = 0;
    std::vector<Entry> Entries; ///< Sets x Associativity, row-major.

    uint32_t numSets(uint32_t Assoc) const { return Capacity / Assoc; }
  };

  Table &tableFor(uint32_t SiteId);
  Table makeTable(uint32_t Capacity);

  /// Quadruples \p T and rehashes its live entries (adaptive mode).
  void growTable(Table &T, arch::TimingModel *Timing);

  SdtOptions Opts;
  bool ChargeFlagSave;
  uint32_t InlineBytes;
  uint32_t DataCursor = IbtcTableRegionBase;
  uint64_t Clock = 0;

  Table Shared;
  std::unordered_map<uint32_t, Table> PerSite;
  std::unordered_map<uint32_t, uint32_t> SiteCodeAddr;

  uint64_t Replacements = 0;
  uint64_t Resizes = 0;
};

} // namespace core
} // namespace sdt

#endif // STRATAIB_CORE_IBTCHANDLER_H
