//===- core/IBHandler.cpp --------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See IBHandler.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "core/IBHandler.h"

using namespace sdt;
using namespace sdt::core;

// Out-of-line virtual anchor.
IBHandler::~IBHandler() = default;

void IBHandler::initialize(FragmentCache &Cache) { (void)Cache; }

std::string IBHandler::statsSummary() const { return ""; }
