//===- core/InlineCacheHandler.h - Per-site inline caching -------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inline caching layered over any backing mechanism: each IB site gets up
/// to N inlined compare-and-jump predictions (filled first-come, the
/// classic inline-cache policy). A monomorphic site resolves in a couple
/// of well-predicted compares; megamorphic sites burn the compares and
/// fall through to the backing mechanism — the tradeoff the paper's
/// inline-depth sweep explores.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CORE_INLINECACHEHANDLER_H
#define STRATAIB_CORE_INLINECACHEHANDLER_H

#include "core/IBHandler.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace sdt {
namespace core {

/// Inline-cache wrapper. Owns the backing mechanism.
class InlineCacheHandler : public IBHandler {
public:
  /// \p Backing must have been constructed with ChargeFlagSave=false —
  /// this wrapper saves the flags once for the whole site sequence.
  InlineCacheHandler(const SdtOptions &Opts,
                     std::unique_ptr<IBHandler> Backing);

  const char *name() const override { return "inline-cache"; }

  void initialize(FragmentCache &Cache) override;

  /// Speculative-fallback sites get zero inlined compares: the trace
  /// guard already covers the monomorphic prediction, so the fallback
  /// goes straight to the backing mechanism.
  SiteCode emitSite(uint32_t SiteId, IBClass Class, uint32_t GuestPc,
                    FragmentCache &Cache,
                    bool SpeculativeFallback = false) override;

  LookupOutcome lookup(uint32_t SiteId, uint32_t GuestTarget,
                       arch::TimingModel *Timing) override;

  void record(uint32_t SiteId, uint32_t GuestTarget, uint32_t HostEntryAddr,
              arch::TimingModel *Timing) override;

  void flush() override;

  /// Clears inlined predictions patched to evicted fragments (a store
  /// per cleared compare slot) and forwards to the backing mechanism.
  uint64_t invalidateEvicted(const EvictedRanges &Ranges, FragmentCache &Cache,
                             arch::TimingModel *Timing) override;

  std::string statsSummary() const override;

  /// The backing mechanism emits its own lookup events under its own name.
  void setTraceSink(trace::TraceSink *S) override {
    IBHandler::setTraceSink(S);
    Backing->setTraceSink(S);
  }

  IBHandler *backingHandler() override { return Backing.get(); }

  /// Inline slots key on site ids (not snapshot-portable); only the
  /// backing mechanism's shared table participates in snapshots.
  void exportSharedTargets(std::vector<uint32_t> &GuestTargets) const override {
    Backing->exportSharedTargets(GuestTargets);
  }
  bool importSharedTarget(uint32_t GuestTarget, uint32_t HostEntryAddr,
                          arch::TimingModel *Timing) override {
    return Backing->importSharedTarget(GuestTarget, HostEntryAddr, Timing);
  }

  /// Hits served by an inlined entry (vs. the backing mechanism).
  uint64_t inlineHits() const { return InlineHits; }

  IBHandler &backing() { return *Backing; }

private:
  struct InlineEntry {
    uint32_t GuestTarget = 0;
    uint32_t HostEntryAddr = 0;
  };

  struct Site {
    uint32_t CodeAddr = 0;
    uint32_t Depth = 0;               ///< 0 for speculative fallbacks.
    std::vector<InlineEntry> Entries; ///< Up to Depth.
  };

  static constexpr uint32_t EntryBytes = 12; ///< li + cmp + branch.

  SdtOptions Opts;
  std::unique_ptr<IBHandler> Backing;
  std::unordered_map<uint32_t, Site> Sites;

  uint64_t InlineHits = 0;
};

} // namespace core
} // namespace sdt

#endif // STRATAIB_CORE_INLINECACHEHANDLER_H
