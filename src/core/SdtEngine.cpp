//===- core/SdtEngine.cpp --------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See SdtEngine.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "core/SdtEngine.h"

#include "core/DispatcherHandler.h"
#include "core/IbtcHandler.h"
#include "core/InlineCacheHandler.h"
#include "core/ReturnCacheHandler.h"
#include "core/SieveHandler.h"
#include "exec/ExecutionPlan.h"
#include "plugin/PluginManager.h"
#include "support/StringUtils.h"
#include "vm/ExecSemantics.h"
#include "vm/Syscalls.h"

#include <cassert>

using namespace sdt;
using namespace sdt::core;
using namespace sdt::isa;
using namespace sdt::vm;
using arch::CycleCategory;
using arch::TimingModel;

/// Builds one mechanism instance (inline-cache wrapped when configured).
static std::unique_ptr<IBHandler> makeHandler(const SdtOptions &Opts,
                                              IBMechanism Mechanism) {
  bool Wrapped = Opts.InlineCacheDepth > 0 &&
                 Mechanism != IBMechanism::Dispatcher;
  std::unique_ptr<IBHandler> Inner;
  switch (Mechanism) {
  case IBMechanism::Dispatcher:
    Inner = std::make_unique<DispatcherHandler>();
    break;
  case IBMechanism::Ibtc:
    Inner = std::make_unique<IbtcHandler>(Opts, /*ChargeFlagSave=*/!Wrapped);
    break;
  case IBMechanism::Sieve:
    Inner =
        std::make_unique<SieveHandler>(Opts, /*ChargeFlagSave=*/!Wrapped);
    break;
  }
  if (Wrapped)
    return std::make_unique<InlineCacheHandler>(Opts, std::move(Inner));
  return Inner;
}

/// Builds the cache manager, routing through SdtOptions::PolicyFactory
/// when the service layer installed one (global-budget accounting).
static cachemgr::CacheManager makeCacheManager(const SdtOptions &Opts) {
  cachemgr::PolicyConfig Config{Opts.CacheEvictTargetPct,
                                Opts.CacheGenPromoteExecs};
  if (Opts.PolicyFactory)
    return cachemgr::CacheManager(Opts.PolicyFactory(Opts.CachePolicy, Config));
  return cachemgr::CacheManager(Opts.CachePolicy, Config);
}

SdtEngine::SdtEngine(const Program &P, const SdtOptions &Opts,
                     const ExecOptions &Exec)
    : Opts(Opts), Exec(Exec), Memory(Exec.MemorySize),
      Decoder(Memory, P.loadAddress(),
              static_cast<uint32_t>(P.image().size()) & ~3u),
      Cache(Opts.FragmentCacheBytes),
      CacheMgr(makeCacheManager(Opts)),
      Main(makeHandler(Opts, Opts.Mechanism)), Xlate(Decoder, Cache, Opts) {
  if (Opts.JumpMechanism && *Opts.JumpMechanism != Opts.Mechanism)
    JumpH = makeHandler(Opts, *Opts.JumpMechanism);
  if (Opts.CallMechanism && *Opts.CallMechanism != Opts.Mechanism)
    CallH = makeHandler(Opts, *Opts.CallMechanism);
  if (Opts.Returns == ReturnStrategy::ReturnCache)
    ReturnH = std::make_unique<ReturnCacheHandler>(Opts);
  if (Opts.Returns == ReturnStrategy::ShadowStack) {
    assert(Opts.ShadowStackDepth > 0 && "shadow stack needs entries");
    Shadow.resize(Opts.ShadowStackDepth);
  }
  Xlate.setHandlers(handlerFor(IBClass::Jump), handlerFor(IBClass::Call),
                    handlerFor(IBClass::Return));
  Main->initialize(Cache);
  if (JumpH)
    JumpH->initialize(Cache);
  if (CallH)
    CallH->initialize(Cache);
  if (ReturnH)
    ReturnH->initialize(Cache);

  State.Pc = P.entry();
  State.setReg(RegSP, Memory.stackTop() - 16);
  State.setReg(RegFP, Memory.stackTop() - 16);

  // Watch the code-bearing image for guest stores so stale translations
  // are never executed (self-modifying-code coherence).
  Memory.trackCodeWrites(Decoder.base(), Decoder.size());
}

void SdtEngine::setTraceSink(trace::TraceSink *S) {
  Sink = S;
  if (S && Exec.Timing)
    S->setClock(
        [](const void *Ctx) {
          return static_cast<const TimingModel *>(Ctx)->totalCycles();
        },
        Exec.Timing);
  Cache.setTraceSink(S);
  Xlate.setTraceSink(S);
  for (IBHandler *H : allHandlers())
    H->setTraceSink(S);
}

void SdtEngine::setPlugins(plugin::PluginManager *P) {
  Plugins = P;
  Xlate.setPlugins(P);
  if (!P)
    return;
  plugin::GuestLayout Layout;
  Layout.ImageBase = Decoder.base();
  Layout.ImageBytes = Decoder.size();
  Layout.MemoryBytes = Memory.size();
  Layout.StackTop = Memory.stackTop();
  // IB sites bind the per-class mechanism; the return entry names the
  // fallback mechanism even under fast-return/shadow-stack strategies
  // (those resolve before the site's mechanism sequence runs).
  const char *MechByClass[3] = {handlerFor(IBClass::Jump)->name(),
                                handlerFor(IBClass::Call)->name(),
                                handlerFor(IBClass::Return)->name()};
  P->attach(Layout, MechByClass);
}

void SdtEngine::notifyIBResolved(const HostInstr &HI, const char *Mechanism,
                                 bool InlineHit, uint32_t GuestTarget) {
  if (!Plugins->wantsIBResolved())
    return;
  plugin::IBResolution R;
  R.SiteId = HI.SiteId;
  R.SitePc = HI.GuestPc;
  R.Class = HI.SiteClass;
  R.Mechanism = Mechanism;
  R.InlineHit = InlineHit;
  R.GuestTarget = GuestTarget;
  Plugins->ibResolved(R, Exec.Timing);
}

Expected<std::unique_ptr<SdtEngine>>
SdtEngine::create(const Program &P, const SdtOptions &Opts,
                  const ExecOptions &Exec) {
  if (const char *Problem = GuestMemory::sizeProblem(Exec.MemorySize))
    return Error::failure(formatString("invalid ExecOptions::MemorySize %u: %s",
                                       Exec.MemorySize, Problem));
  auto Engine =
      std::unique_ptr<SdtEngine>(new SdtEngine(P, Opts, Exec));
  if (!Engine->Memory.loadProgram(P))
    return Error::failure("program image does not fit in guest memory");
  return Engine;
}

void SdtEngine::prewarm(const PrewarmImage &Image) {
  assert(Cache.fragmentCount() == 0 && "prewarm must precede run()");
  TimingModel *T = Exec.Timing;
  uint64_t Fragments = 0;
  uint64_t Bytes = 0;
  for (uint32_t GuestPc : Image.FragmentEntries) {
    // Duplicates, cache-full (grant below the snapshot's footprint —
    // partial warm start), and failed translations all degrade to a
    // colder start for that entry.
    if (Cache.lookup(GuestPc).valid() || Cache.isFull()) {
      ++Stats.RehydrationsSkipped;
      continue;
    }
    Expected<HostLoc> Loc = Xlate.translate(GuestPc, /*Timing=*/nullptr, Stats);
    if (!Loc) {
      ++Stats.RehydrationsSkipped;
      continue;
    }
    uint32_t FragBytes = Cache.fragment(Loc->Frag).CodeBytes;
    ++Fragments;
    Bytes += FragBytes;
    // Rehydration streams pre-built code out of the snapshot: a fixed
    // install cost plus a bulk-copy cost — charged to SnapshotLoad, not
    // the full per-instruction Translate decode cost. That gap is the
    // warm-start saving E18 measures.
    if (T)
      T->charge(CycleCategory::SnapshotLoad, 2 + FragBytes / 16);
  }

  std::vector<IBHandler *> Hs = allHandlers();
  uint64_t Installed = 0;
  for (const PrewarmImage::SharedTarget &S : Image.SharedTargets) {
    HostLoc Loc = S.HandlerIndex < Hs.size() ? Cache.lookup(S.GuestTarget)
                                             : HostLoc();
    if (!Loc.valid()) { // Unknown handler, or its fragment was skipped.
      ++Stats.RehydrationsSkipped;
      continue;
    }
    uint32_t EntryAddr = Cache.fragment(Loc.Frag).HostEntryAddr;
    if (!Hs[S.HandlerIndex]->importSharedTarget(S.GuestTarget, EntryAddr,
                                                /*Timing=*/nullptr)) {
      ++Stats.RehydrationsSkipped;
      continue;
    }
    ++Installed;
    if (T)
      T->charge(CycleCategory::SnapshotLoad, 2); // Two-word entry install.
  }

  ++Stats.SnapshotLoads;
  Stats.RehydratedFragments += Fragments;
  Stats.RehydratedBytes += Bytes;
  Stats.RehydratedIbtcEntries += Installed;
}

void SdtEngine::finishTrace(Translator::TraceEnd End) {
  assert(Recording && "finishTrace without active recording");
  Recording = false;
  TracedHeads.insert(TraceHead);

  HostLoc OldLoc = Cache.lookup(TraceHead);
  assert(OldLoc.valid() && "trace head lost its fragment");
  uint32_t OldFrag = OldLoc.Frag;

  Expected<HostLoc> TraceLoc =
      Xlate.buildTrace(TraceHead, TraceOutcomes, TraceSpecTargets, TraceCtis,
                       End, Exec.Timing, Stats);
  if (!TraceLoc)
    return; // Head stays marked; execution continues on the old path.

  // Patch the old fragment's head into a trampoline so every existing
  // link into it now reaches the trace.
  HostInstr Trampoline;
  Trampoline.Kind = HostOpKind::JumpHost;
  Trampoline.TargetHost = *TraceLoc;
  // Keep the guest head address so an eviction of the trace can revert
  // this trampoline to a dispatchable exit stub.
  Trampoline.TargetGuest = TraceHead;
  Trampoline.HostAddr = Cache.fragment(OldFrag).Code[0].HostAddr;
  Trampoline.Linked = true;
  Cache.fragment(OldFrag).Code[0] = Trampoline;
  Cache.noteBodyPatched(OldFrag);
  ++Stats.LinksPatched;
  if (Sink)
    Sink->record(trace::EventKind::LinkPatch, TraceHead, Trampoline.HostAddr);
  if (Exec.Timing)
    Exec.Timing->chargeLinkPatch(CycleCategory::Link);
}

void SdtEngine::flushEverything() {
  Recording = false;
  TracedHeads.clear();
  Cache.flushAll();
  Main->flush();
  Main->initialize(Cache);
  if (JumpH) {
    JumpH->flush();
    JumpH->initialize(Cache);
  }
  if (CallH) {
    CallH->flush();
    CallH->initialize(Cache);
  }
  if (ReturnH) {
    ReturnH->flush();
    ReturnH->initialize(Cache);
  }
  Xlate.clearSites();
  CacheMgr.notifyFlush();
  ++Stats.Flushes;
  if (Plugins)
    Plugins->cacheFlushed();
  // The translated-code footprint is gone; drop its I-cache lines.
  if (Exec.Timing)
    Exec.Timing->icache().flush();
}

void SdtEngine::handleCachePressure(uint32_t PinnedFrag) {
  if (CacheMgr.kind() == cachemgr::CachePolicyKind::FullFlush) {
    flushEverything();
    return;
  }
  std::vector<cachemgr::FragmentView> Live;
  Live.reserve(Cache.liveFragmentCount());
  for (uint32_t I = 0, E = static_cast<uint32_t>(Cache.fragmentCount());
       I != E; ++I) {
    if (!Cache.isLive(I))
      continue;
    const Fragment &F = Cache.fragment(I);
    Live.push_back({I, F.HostEntryAddr, F.CodeBytes, F.ExecCount});
  }
  cachemgr::EvictionPlan Plan = CacheMgr.plan(
      Live, {Opts.FragmentCacheBytes, Cache.usedBytes()}, PinnedFrag);
  if (Plan.FullFlush) {
    flushEverything();
    return;
  }

  if (Plugins)
    for (uint32_t V : Plan.Victims)
      Plugins->fragmentInvalidated(V, Cache.fragment(V).GuestEntry);
  EvictionOutcome Out = Cache.evict(Plan.Victims);
  ++Stats.PartialEvictions;
  Stats.EvictedBytes += Out.BytesFreed;
  Stats.LinksUnlinked += Out.LinksUnlinked;
  TimingModel *T = Exec.Timing;
  if (T)
    for (uint64_t I = 0; I != Out.LinksUnlinked; ++I)
      T->chargeLinkPatch(CycleCategory::Link);
  // Every mechanism pointer into the freed ranges must die before any
  // translated code runs again: the IB hit path jumps through them
  // without a liveness check, exactly like real inline lookup code.
  for (IBHandler *H : allHandlers())
    H->invalidateEvicted(Out.Ranges, Cache, T);
  // Evicted I-cache lines are not flushed: the simulated lines age out
  // naturally, matching a real cache's view of overwritten code space.

  // If the head being recorded was evicted, abandon the recording; it is
  // not marked as traced, so a re-hot head can record again.
  if (Recording && !Cache.lookup(TraceHead).valid())
    Recording = false;
}

bool SdtEngine::handleCodeWrite(uint32_t StoreAddr, uint32_t CurFrag) {
  std::vector<std::pair<uint32_t, uint32_t>> Dirty =
      Memory.takePendingCodeWrites();
  assert(!Dirty.empty() && "code-write handler fired with nothing pending");

  uint32_t DirtyBytes = 0;
  uint32_t SlotsReset = 0;
  for (const auto &[Begin, End] : Dirty) {
    DirtyBytes += End - Begin;
    SlotsReset += Decoder.invalidate(Begin, End - Begin);
  }

  // Images mix code and data on the same pages, so plain data stores land
  // here too; they must not show up in the counters, the trace, or the
  // fragment cache. Every word inside a live fragment's source hull was
  // fetched through the decoder when the fragment was built, so a store
  // that reset no decode slot cannot overlap any fragment — skip the
  // whole-cache scan on that (overwhelmingly common) path.
  if (SlotsReset == 0)
    return false;

  // Remember genuinely dirtied code spans for the plan engine: any
  // fragment re-translated over these words is SMC-churned, so its plan
  // deoptimizes to the per-instruction path instead of being rebuilt on
  // every invalidate/retranslate round trip.
  for (const auto &Span : Dirty)
    DirtiedGuestSpans.push_back(Span);

  // Collect every live fragment whose source hull covers a dirtied word.
  std::vector<uint32_t> Victims;
  for (uint32_t I = 0, E = static_cast<uint32_t>(Cache.fragmentCount());
       I != E; ++I) {
    if (!Cache.isLive(I))
      continue;
    const Fragment &F = Cache.fragment(I);
    for (const auto &[Begin, End] : Dirty) {
      if (F.overlapsGuest(Begin, End)) {
        Victims.push_back(I);
        break;
      }
    }
  }

  ++Stats.CodeWriteInvalidations;
  if (Sink)
    Sink->record(trace::EventKind::CodeWrite, StoreAddr, DirtyBytes);

  // A recorded path may already have crossed the patched words; abandon
  // the recording. The head is not marked traced, so it can re-record
  // against the new code once it is hot again.
  Recording = false;

  if (Victims.empty())
    return false;

  if (Sink)
    for (uint32_t V : Victims) {
      const Fragment &F = Cache.fragment(V);
      Sink->record(trace::EventKind::FragInvalidate, F.GuestEntry,
                   F.CodeBytes);
    }
  if (Plugins)
    for (uint32_t V : Victims)
      Plugins->fragmentInvalidated(V, Cache.fragment(V).GuestEntry);

  // Reuse the eviction machinery (tombstones, link unlinking, handler
  // scrubbing), but keep the accounting separate from capacity
  // evictions so E14's policy comparisons stay untouched. No CacheEvict
  // event either — the per-fragment FragInvalidate events above are the
  // trace-side record.
  EvictionOutcome Out = Cache.evict(Victims, /*EmitEvent=*/false);
  Stats.FragmentsInvalidatedByWrite += Out.FragmentsEvicted;
  Stats.StaleBytesDiscarded += Out.BytesFreed;
  Stats.LinksUnlinked += Out.LinksUnlinked;
  TimingModel *T = Exec.Timing;
  if (T)
    for (uint64_t I = 0; I != Out.LinksUnlinked; ++I)
      T->chargeLinkPatch(CycleCategory::Link);
  for (IBHandler *H : allHandlers())
    H->invalidateEvicted(Out.Ranges, Cache, T);

  bool KilledCurrent = false;
  for (uint32_t V : Victims) {
    if (V == CurFrag)
      KilledCurrent = true;
    // Let the invalidated heads trace again once re-translated: the new
    // code may have a different hot path.
    if (Opts.EnableTraces)
      TracedHeads.erase(Cache.fragment(V).GuestEntry);
  }
  return KilledCurrent;
}

HostLoc SdtEngine::dispatchTo(uint32_t GuestPc, uint32_t PinnedFrag) {
  ++Stats.DispatchEntries;
  if (Sink)
    Sink->record(trace::EventKind::DispatchEntry, GuestPc);
  TimingModel *T = Exec.Timing;
  if (T) {
    T->chargeContextSave(CycleCategory::Dispatch);
    T->chargeMapLookup(CycleCategory::Dispatch);
  }

  HostLoc Loc = Cache.lookup(GuestPc);
  if (!Loc.valid()) {
    if (Cache.isFull())
      handleCachePressure(PinnedFrag);
    Expected<HostLoc> Translated = Xlate.translate(GuestPc, T, Stats);
    if (!Translated) {
      PendingFault = Translated.error().message();
      return HostLoc();
    }
    Loc = *Translated;
    Stats.RetranslationsAfterEviction = Cache.retranslations();
  }

  if (T)
    T->chargeContextRestore(CycleCategory::Dispatch);
  return Loc;
}

void SdtEngine::finishRun(RunContext &Ctx, ExitReason Reason) {
  Ctx.Result.Reason = Reason;
  Ctx.Done = true;
}

void SdtEngine::faultRun(RunContext &Ctx, std::string Message) {
  Ctx.Result.Reason = ExitReason::Fault;
  Ctx.Result.FaultMessage = std::move(Message);
  Ctx.Done = true;
}

void SdtEngine::recordCtiStep(int CondOutcome) {
  if (!Recording)
    return;
  if (CondOutcome >= 0)
    TraceOutcomes.push_back(CondOutcome == 1);
  ++TraceCtis;
  if (TraceCtis >= Opts.MaxTraceBlocks)
    finishTrace(Translator::TraceEnd::CtiBudget);
}

void SdtEngine::noteFragmentEntry(RunContext &Ctx) {
  TimingModel *T = Ctx.T;
  Fragment &Entered = Cache.fragment(Ctx.Cur.Frag);
  ++Entered.ExecCount;
  if (Opts.InstrumentBlockCounts) {
    ++BlockCounts[Entered.GuestEntry];
    if (T) {
      // The injected probe: load the block's counter, bump, store.
      uint32_t CounterAddr =
          BlockCounterRegionBase + (Entered.GuestEntry & 0x03FFFFFC);
      T->chargeLoad(CycleCategory::Instrument, CounterAddr);
      T->chargeAluOps(CycleCategory::Instrument, 1);
      T->chargeStore(CycleCategory::Instrument, CounterAddr);
    }
  }
  if (Plugins && Plugins->wantsFragmentEntry())
    Plugins->fragmentEntry(Ctx.Cur.Frag, Entered.GuestEntry, T);
  if (Opts.EnableTraces) {
    if (Recording && Entered.GuestEntry == TraceHead && TraceCtis > 0) {
      // The recorded path closed back on its head: emit the looping
      // trace. The trampoline patched into this fragment's head takes
      // effect on the very next instruction fetch.
      finishTrace(Translator::TraceEnd::CtiBudget);
    } else if (!Recording &&
               Entered.ExecCount >= Opts.TraceHotThreshold &&
               !TracedHeads.count(Entered.GuestEntry)) {
      Recording = true;
      TraceHead = Entered.GuestEntry;
      TraceOutcomes.clear();
      TraceSpecTargets.clear();
      TraceCtis = 0;
    }
  }
}

void SdtEngine::stepAt(RunContext &Ctx) {
  TimingModel *T = Ctx.T;

  // Copy the op: any dispatch below may flush the cache and invalidate
  // references into it (and finishTrace may patch Code[0] in place).
  const HostInstr HI = Cache.fragment(Ctx.Cur.Frag).Code[Ctx.Cur.Index];

  if (T)
    T->chargeFetch(HI.HostAddr); // Current category stays App throughout.

  if (HI.CountsAsGuest)
    ++Ctx.Executed;

  // Direct jumps folded into this op by glue elimination: each one
  // retires a guest instruction (before the op itself, in path order).
  if (HI.ElidedJumps) {
    Ctx.Executed += HI.ElidedJumps;
    Ctx.Result.Cti.DirectJumps += HI.ElidedJumps;
    for (uint16_t N = HI.ElidedJumps; N; --N)
      recordCtiStep(-1);
  }

  switch (HI.Kind) {
  case HostOpKind::Guest: {
    if (HI.Folded) {
      // Constant-folded ALU op: a single materialisation of the value
      // the optimizer computed through vm::evalPureAlu — the
      // architectural result is identical by construction.
      State.setReg(HI.GuestI.Rd, HI.FoldedValue);
      if (T)
        T->chargeAluOps(1);
      ++Ctx.Cur.Index;
      break;
    }
    ExecEffect Effect = executeNonCti(HI.GuestI, State, Memory);
    if (Effect.faulted()) {
      faultRun(Ctx, formatString("%s at pc=0x%x (addr=0x%x)",
                                 Effect.FaultReason, HI.GuestPc, Effect.Addr));
      break;
    }
    if (T) {
      if (Effect.IsMem) {
        if (Effect.IsStore)
          T->chargeStore(Effect.Addr);
        else
          T->chargeLoad(Effect.Addr);
      } else {
        T->chargeExecute(HI.GuestI);
      }
    }
    if (Effect.IsMem && Plugins && Plugins->wantsMemAccess())
      Plugins->memAccess(HI.GuestPc, Effect.Addr, Effect.IsStore, T);
    // Self-modifying code: a store into the decoded code range kills
    // every translation built from the dirtied words. If that includes
    // the fragment being executed, resume at the next guest pc through
    // the dispatcher (HI was copied above, so it is still valid).
    if (Effect.IsStore && Memory.hasPendingCodeWrites() &&
        handleCodeWrite(Effect.Addr, Ctx.Cur.Frag)) {
      HostLoc Loc = dispatchTo(HI.GuestPc + isa::InstructionSize);
      if (!Loc.valid()) {
        faultRun(Ctx, PendingFault);
        break;
      }
      Ctx.Cur = Loc;
      break;
    }
    ++Ctx.Cur.Index;
    break;
  }

  case HostOpKind::CondBranch: {
    bool Taken = evalBranchCondition(HI.GuestI, State);
    if (T)
      T->chargeCondBranch(HI.HostAddr, Taken);
    ++Ctx.Result.Cti.CondBranches;
    recordCtiStep(Taken ? 1 : 0);
    // Layout: Index+1 = fall-through stub, Index+2 = taken stub.
    Ctx.Cur.Index += Taken ? 2 : 1;
    break;
  }

  case HostOpKind::TraceBranch: {
    bool Taken = evalBranchCondition(HI.GuestI, State);
    if (T)
      T->chargeCondBranch(HI.HostAddr, Taken);
    ++Ctx.Result.Cti.CondBranches;
    recordCtiStep(Taken ? 1 : 0);
    // The on-trace direction falls through — past the off-trace stub
    // when it still sits adjacent at Index+1, or directly when stub
    // outlining moved it to the tail. The off-trace direction goes to
    // the stub wherever it lives.
    if (Taken == HI.OnTraceTaken)
      Ctx.Cur.Index += (HI.OffTraceIndex == Ctx.Cur.Index + 1) ? 2 : 1;
    else
      Ctx.Cur.Index = HI.OffTraceIndex;
    break;
  }

  case HostOpKind::Elided:
    // A direct jump linearised away by trace formation: retires the
    // guest instruction at zero simulated cost.
    ++Ctx.Result.Cti.DirectJumps;
    recordCtiStep(-1);
    ++Ctx.Cur.Index;
    break;

  case HostOpKind::JumpHost:
    if (T)
      T->chargeDirectJump();
    if (HI.CountsAsGuest) {
      ++Ctx.Result.Cti.DirectJumps;
      recordCtiStep(-1);
    }
    Ctx.Cur = HI.TargetHost;
    break;

  case HostOpKind::ExitStub: {
    if (HI.CountsAsGuest) {
      ++Ctx.Result.Cti.DirectJumps;
      recordCtiStep(-1);
    }
    uint64_t FlushesBefore = Cache.flushCount();
    HostLoc Loc = dispatchTo(HI.TargetGuest, Ctx.Cur.Frag);
    if (!Loc.valid()) {
      faultRun(Ctx, PendingFault);
      break;
    }
    if (Opts.LinkFragments && Cache.flushCount() == FlushesBefore) {
      // Patch this stub into a direct fragment-to-fragment jump.
      HostInstr &Orig = Cache.fragment(Ctx.Cur.Frag).Code[Ctx.Cur.Index];
      Orig.Kind = HostOpKind::JumpHost;
      Orig.TargetHost = Loc;
      Orig.Linked = true;
      Cache.noteBodyPatched(Ctx.Cur.Frag);
      ++Stats.LinksPatched;
      if (Sink)
        Sink->record(trace::EventKind::LinkPatch, HI.TargetGuest,
                     HI.HostAddr);
      if (T)
        T->chargeLinkPatch(CycleCategory::Link);
    }
    Ctx.Cur = Loc;
    break;
  }

  case HostOpKind::SetLink: {
    if (HI.LinkDead) {
      // The optimizer proved the link register is overwritten before
      // any read with no trace exit in between: the op retires its
      // guest instruction but does no work and occupies no bytes. The
      // return predictor is still pushed — the RAS tracks call-shaped
      // control flow, not link-register liveness, so every guest call
      // must push exactly once in both execution modes (the interpreter
      // pushes unconditionally). The guest return point is the right
      // value: no return ever pops this slot's match, exactly as in
      // native execution of the same dead-link call.
      if (T)
        T->predictor().pushReturn(HI.TargetGuest);
      if (HI.CountsAsGuest) {
        ++Ctx.Result.Cti.DirectCalls;
        recordCtiStep(-1);
      } else {
        ++Ctx.Result.Cti.IndirectCalls; // Retired by its IBLookup/guard.
      }
      ++Ctx.Cur.Index;
      break;
    }
    uint32_t LinkValue = HI.TargetGuest;
    bool NeedsHostAddr = Opts.Returns == ReturnStrategy::FastReturn ||
                         Opts.Returns == ReturnStrategy::ShadowStack;
    uint32_t ReturnPointHost = 0;
    if (NeedsHostAddr) {
      if (HI.Linked) {
        ReturnPointHost = HI.TargetHostAddr;
      } else {
        // Resolve the return point's fragment now (translating it if
        // needed) so a translated address is available at call time.
        uint64_t FlushesBefore = Cache.flushCount();
        HostLoc Loc = dispatchTo(HI.TargetGuest, Ctx.Cur.Frag);
        if (!Loc.valid()) {
          faultRun(Ctx, PendingFault);
          break;
        }
        ReturnPointHost = Cache.fragment(Loc.Frag).HostEntryAddr;
        if (Cache.flushCount() == FlushesBefore) {
          HostInstr &Orig = Cache.fragment(Ctx.Cur.Frag).Code[Ctx.Cur.Index];
          Orig.Linked = true;
          Orig.TargetHostAddr = ReturnPointHost;
          Cache.noteBodyPatched(Ctx.Cur.Frag);
        }
      }
    }
    if (Opts.Returns == ReturnStrategy::FastReturn)
      LinkValue = ReturnPointHost;
    if (Opts.Returns == ReturnStrategy::ShadowStack) {
      uint64_t Slot = ShadowTop % Opts.ShadowStackDepth;
      Shadow[Slot] = {HI.TargetGuest, ReturnPointHost};
      ++ShadowTop;
      if (T) {
        uint32_t SlotAddr =
            ShadowStackRegionBase + static_cast<uint32_t>(Slot) * 8;
        T->chargeStore(CycleCategory::IBLookup, SlotAddr);
        T->chargeStore(CycleCategory::IBLookup, SlotAddr + 4);
        // Bump the shadow stack pointer.
        T->chargeAluOps(CycleCategory::IBLookup, 1);
      }
    }
    State.setReg(HI.GuestI.Rd, LinkValue);
    if (T) {
      T->chargeAluOps(2); // Materialise the 32-bit link value.
      T->predictor().pushReturn(LinkValue);
    }
    if (HI.CountsAsGuest) {
      ++Ctx.Result.Cti.DirectCalls;
      recordCtiStep(-1);
    } else {
      ++Ctx.Result.Cti.IndirectCalls; // Retired below by its IBLookup.
    }
    ++Ctx.Cur.Index;
    break;
  }

  case HostOpKind::IBLookup: {
    uint32_t Target = State.reg(HI.GuestI.Rs1);
    if (Recording) {
      if (canSpeculate(HI.SiteClass) &&
          profileMonomorphic(HI.GuestPc, Target)) {
        // Monomorphic site: record a speculated crossing and keep the
        // recording alive through the predicted target.
        TraceSpecTargets.push_back(Target);
        recordCtiStep(-1);
      } else {
        finishTrace(Translator::TraceEnd::AtIB);
      }
    }
    if (canSpeculate(HI.SiteClass))
      updateIBProfile(HI.GuestPc, Target);
    size_t ClassIdx = static_cast<size_t>(HI.SiteClass);
    ++Stats.IBExecs[ClassIdx];
    switch (HI.SiteClass) {
    case IBClass::Jump:
      ++Ctx.Result.Cti.IndirectJumps;
      break;
    case IBClass::Call:
      break; // Counted at the preceding SetLink.
    case IBClass::Return:
      ++Ctx.Result.Cti.Returns;
      break;
    }
    if (Exec.CollectSiteTargets)
      Ctx.Result.SiteTargets[HI.GuestPc].insert(Target);

    // Fast returns: a translated link value jumps straight to its
    // fragment, with native-like return prediction. The return-shaped
    // host jump consumes the RAS on *both* paths — the hardware pops
    // on the instruction, not on where it lands — so the transparency
    // fallback below must not skip the chargeReturn, or every push of
    // a fallback's call would skew all later return predictions
    // relative to native execution.
    if (HI.SiteClass == IBClass::Return &&
        Opts.Returns == ReturnStrategy::FastReturn) {
      if (T)
        T->chargeReturn(CycleCategory::IBLookup, Target);
      if (Target >= FragmentCacheBase) {
        HostLoc Loc = Cache.locForEntryAddr(Target);
        if (Loc.valid()) {
          ++Stats.FastReturnDirect;
          if (Plugins)
            notifyIBResolved(HI, "fast-return", /*InlineHit=*/true,
                             Cache.fragment(Loc.Frag).GuestEntry);
          Ctx.Cur = Loc;
          break;
        }
        // The fragment was flushed since the call; recover via its
        // guest address.
        uint32_t Guest = Cache.retiredGuestEntry(Target);
        if (Guest == 0) {
          faultRun(Ctx, formatString(
              "return to unknown translated address 0x%x at pc=0x%x",
              Target, HI.GuestPc));
          break;
        }
        HostLoc Redo = dispatchTo(Guest, Ctx.Cur.Frag);
        if (!Redo.valid()) {
          faultRun(Ctx, PendingFault);
          break;
        }
        if (Plugins)
          notifyIBResolved(HI, "fast-return", /*InlineHit=*/false, Guest);
        Ctx.Cur = Redo;
        break;
      }
      ++Stats.FastReturnFallback;
    }

    // Shadow stack: probe the top entry before any general mechanism.
    if (HI.SiteClass == IBClass::Return &&
        Opts.Returns == ReturnStrategy::ShadowStack) {
      bool Served = false;
      if (ShadowTop > 0) {
        uint64_t Slot = (ShadowTop - 1) % Opts.ShadowStackDepth;
        auto [Guest, Host] = Shadow[Slot];
        uint32_t SlotAddr =
            ShadowStackRegionBase + static_cast<uint32_t>(Slot) * 8;
        if (T) {
          T->chargeLoad(CycleCategory::IBLookup, SlotAddr); // Guest tag.
          // Pointer math + compare.
          T->chargeAluOps(CycleCategory::IBLookup, 2);
        }
        --ShadowTop; // Pop on match *and* on mismatch (resync).
        if (Guest == Target) {
          if (T) {
            // Translated target.
            T->chargeLoad(CycleCategory::IBLookup, SlotAddr + 4);
            T->chargeIndirectJump(CycleCategory::IBLookup, HI.HostAddr,
                                  Host);
          }
          HostLoc Loc = Cache.locForEntryAddr(Host);
          if (Loc.valid()) {
            ++Stats.ShadowStackHits;
            if (Plugins)
              notifyIBResolved(HI, "shadow-stack", /*InlineHit=*/true,
                               Target);
            Ctx.Cur = Loc;
            Served = true;
          } else {
            // The fragment was flushed; redo by guest address.
            ++Stats.ShadowStackMisses;
            HostLoc Redo = dispatchTo(Target, Ctx.Cur.Frag);
            if (!Redo.valid()) {
              faultRun(Ctx, PendingFault);
              break;
            }
            if (Plugins)
              notifyIBResolved(HI, "shadow-stack", /*InlineHit=*/false,
                               Target);
            Ctx.Cur = Redo;
            Served = true;
          }
        } else {
          ++Stats.ShadowStackMisses;
          if (Opts.EnforceReturnIntegrity) {
            faultRun(Ctx, formatString(
                "return-address integrity violation at pc=0x%x: "
                "returning to 0x%x, shadow stack expected 0x%x",
                HI.GuestPc, Target, Guest));
            break;
          }
        }
      } else {
        ++Stats.ShadowStackMisses;
        if (Opts.EnforceReturnIntegrity) {
          faultRun(Ctx,
                   formatString("return-address integrity violation at "
                                "pc=0x%x: return with empty shadow stack",
                                HI.GuestPc));
          break;
        }
      }
      if (Served)
        break;
      // Otherwise fall through to the general mechanism below.
    }

    // Handlers attribute their own charges to IBLookup; no category
    // flip needed around the call.
    IBHandler *H = handlerFor(HI.SiteClass);
    if (Sink)
      Sink->setIbClass(static_cast<uint8_t>(HI.SiteClass));
    LookupOutcome Outcome = H->lookup(HI.SiteId, Target, T);
    if (Outcome.Hit) {
      ++Stats.IBInlineHits[ClassIdx];
      if (Plugins)
        notifyIBResolved(HI, H->name(), /*InlineHit=*/true, Target);
      HostLoc Loc = Cache.locForEntryAddr(Outcome.HostEntryAddr);
      assert(Loc.valid() &&
             "IB mechanism returned a non-live fragment address");
      Ctx.Cur = Loc;
      break;
    }

    uint64_t FlushesBefore = Cache.flushCount();
    HostLoc Loc = dispatchTo(Target, Ctx.Cur.Frag);
    if (!Loc.valid()) {
      faultRun(Ctx, PendingFault);
      break;
    }
    if (Cache.flushCount() == FlushesBefore) {
      uint32_t EntryAddr = Cache.fragment(Loc.Frag).HostEntryAddr;
      H->record(HI.SiteId, Target, EntryAddr, T);
    }
    if (Plugins)
      notifyIBResolved(HI, H->name(), /*InlineHit=*/false, Target);
    Ctx.Cur = Loc;
    break;
  }

  case HostOpKind::SpecGuard: {
    uint32_t Target = State.reg(HI.GuestI.Rs1);
    bool Hit = Target == HI.TargetGuest;
    size_t ClassIdx = static_cast<size_t>(HI.SiteClass);
    if (T) {
      // The inline guard: save flags, materialise the predicted
      // target, compare, branch to the fallback site on mismatch.
      // The first host word was charged by the fetch above.
      T->chargeCodeRange(CycleCategory::IBLookup, HI.HostAddr + 4,
                         hostInstrBytes(HI) - 4);
      if (!HI.FlagSaveElided)
        T->chargeFlagSave(CycleCategory::IBLookup, Opts.FullFlagSave);
      T->chargeAluOps(CycleCategory::IBLookup, 2);
      T->chargeCondBranch(CycleCategory::IBLookup, HI.HostAddr, !Hit);
      // On the hot (hit) path the restore may have been coalesced
      // into a following guard; the miss path always restores before
      // entering the fallback mechanism's own sequence.
      if (!Hit || !HI.FlagRestoreElided)
        T->chargeFlagRestore(CycleCategory::IBLookup, Opts.FullFlagSave);
    }
    if (Recording) {
      if (Hit && canSpeculate(HI.SiteClass) &&
          profileMonomorphic(HI.GuestPc, Target)) {
        TraceSpecTargets.push_back(Target);
        recordCtiStep(-1);
      } else if (Hit) {
        finishTrace(Translator::TraceEnd::AtIB);
      }
      // On a miss the fallback IBLookup right behind decides.
    }
    if (Hit) {
      ++Ctx.Executed; // Retires the guest IB (the guard doesn't count).
      ++Stats.IBExecs[ClassIdx];
      ++Stats.IBInlineHits[ClassIdx];
      ++Stats.SpecGuardHits;
      updateIBProfile(HI.GuestPc, Target);
      switch (HI.SiteClass) {
      case IBClass::Jump:
        ++Ctx.Result.Cti.IndirectJumps;
        break;
      case IBClass::Call:
        break; // Counted at the preceding SetLink.
      case IBClass::Return:
        ++Ctx.Result.Cti.Returns;
        break;
      }
      if (Exec.CollectSiteTargets)
        Ctx.Result.SiteTargets[HI.GuestPc].insert(Target);
      if (Sink)
        Sink->record(trace::EventKind::SpecGuardHit, HI.GuestPc, Target);
      if (Plugins)
        notifyIBResolved(HI, "spec-guard", /*InlineHit=*/true, Target);
      // Fall into the inlined continuation: past the adjacent fallback
      // site, or directly when stub outlining moved it to the tail.
      Ctx.Cur.Index += (HI.OffTraceIndex == Ctx.Cur.Index + 1) ? 2 : 1;
    } else {
      ++Stats.SpecGuardMisses;
      if (Sink)
        Sink->record(trace::EventKind::SpecGuardMiss, HI.GuestPc, Target);
      // The fallback IBLookup runs the bound mechanism's sequence and
      // retires the instruction (it keeps CountsAsGuest).
      Ctx.Cur.Index = HI.OffTraceIndex;
    }
    break;
  }

  case HostOpKind::SyscallOp: {
    if (Recording)
      finishTrace(Translator::TraceEnd::AtStop);
    ++Stats.Syscalls;
    if (T)
      T->chargeSyscall();
    int32_t ExitCode = 0;
    const char *Reason = nullptr;
    SyscallOutcome Outcome =
        executeSyscall(State, Memory, Ctx.Sys, ExitCode, Reason);
    if (Outcome == SyscallOutcome::Fault) {
      faultRun(Ctx, formatString("%s at pc=0x%x", Reason, HI.GuestPc));
      break;
    }
    if (Outcome == SyscallOutcome::Exit) {
      Ctx.Result.ExitCode = ExitCode;
      finishRun(Ctx, ExitReason::Exited);
      break;
    }
    ++Ctx.Cur.Index;
    break;
  }

  case HostOpKind::HaltOp:
    if (Recording)
      finishTrace(Translator::TraceEnd::AtStop);
    finishRun(Ctx, ExitReason::Halted);
    break;
  }
}

void SdtEngine::runSwitchLoop(RunContext &Ctx) {
  while (!Ctx.Done) {
    if (Ctx.Executed >= Exec.MaxInstructions) {
      finishRun(Ctx, ExitReason::InstrLimit);
      break;
    }
    if (Ctx.Cur.Index == 0)
      noteFragmentEntry(Ctx);
    stepAt(Ctx);
  }
}

bool SdtEngine::usePlanEngine() const {
  if (Opts.Engine != ExecEngineKind::Plan)
    return false;
  // A trace sink observes every instruction fetch (chargeFetch events)
  // in program order; batched line-span probes cannot reproduce that.
  if (Sink)
    return false;
  // Execution-time plugin probes interleave their Instrument charges
  // with per-op App charges; fused superops would reorder them.
  if (Plugins &&
      (Plugins->wantsFragmentEntry() || Plugins->wantsIBResolved() ||
       Plugins->wantsMemAccess()))
    return false;
  return true;
}

RunResult SdtEngine::run() {
  RunContext Ctx;
  Ctx.T = Exec.Timing;

  Ctx.Cur = dispatchTo(State.Pc);
  if (!Ctx.Cur.valid())
    faultRun(Ctx, PendingFault);

  if (usePlanEngine())
    runPlanLoop(Ctx);
  else
    runSwitchLoop(Ctx);

  Ctx.Result.Output = std::move(Ctx.Sys.Output);
  Ctx.Result.Checksum = Ctx.Sys.Checksum;
  Ctx.Result.InstructionCount = Ctx.Executed;
  return std::move(Ctx.Result);
}

std::string SdtEngine::report() const {
  std::string Out;
  Out += formatString("config: %s\n", Opts.describe().c_str());
  Out += formatString(
      "fragments=%llu guest-instrs-translated=%llu flushes=%llu "
      "dispatches=%llu links=%llu\n",
      static_cast<unsigned long long>(Stats.FragmentsTranslated),
      static_cast<unsigned long long>(Stats.GuestInstrsTranslated),
      static_cast<unsigned long long>(Stats.Flushes),
      static_cast<unsigned long long>(Stats.DispatchEntries),
      static_cast<unsigned long long>(Stats.LinksPatched));
  if (Opts.EnableTraces)
    Out += formatString(
        "traces=%llu trace-guest-instrs=%llu\n",
        static_cast<unsigned long long>(Stats.TracesBuilt),
        static_cast<unsigned long long>(Stats.TraceGuestInstrs));
  if (Opts.OptimizeTraces)
    Out += formatString(
        "trace-opt: optimized=%llu glue-elided=%llu const-folds=%llu "
        "dead-links=%llu stubs-outlined=%llu flag-pairs-elided=%llu\n",
        static_cast<unsigned long long>(Stats.TracesOptimized),
        static_cast<unsigned long long>(Stats.TraceGlueElided),
        static_cast<unsigned long long>(Stats.TraceConstFolds),
        static_cast<unsigned long long>(Stats.TraceDeadLinks),
        static_cast<unsigned long long>(Stats.TraceStubsOutlined),
        static_cast<unsigned long long>(Stats.TraceFlagPairsElided));
  if (Opts.TraceSpeculate)
    Out += formatString(
        "trace-spec: guards=%llu hits=%llu misses=%llu hit-rate=%.2f%%\n",
        static_cast<unsigned long long>(Stats.SpecGuardsEmitted),
        static_cast<unsigned long long>(Stats.SpecGuardHits),
        static_cast<unsigned long long>(Stats.SpecGuardMisses),
        100.0 * Stats.specGuardHitRate());
  if (Opts.CachePolicy != cachemgr::CachePolicyKind::FullFlush ||
      Stats.PartialEvictions != 0)
    Out += formatString(
        "cache: policy=%s partial-evictions=%llu evicted-bytes=%llu "
        "retranslations=%llu links-unlinked=%llu\n",
        CacheMgr.policyName(),
        static_cast<unsigned long long>(Stats.PartialEvictions),
        static_cast<unsigned long long>(Stats.EvictedBytes),
        static_cast<unsigned long long>(Stats.RetranslationsAfterEviction),
        static_cast<unsigned long long>(Stats.LinksUnlinked));
  if (Stats.CodeWriteInvalidations != 0)
    Out += formatString(
        "smc: code-write-invalidations=%llu frags-invalidated=%llu "
        "stale-bytes=%llu\n",
        static_cast<unsigned long long>(Stats.CodeWriteInvalidations),
        static_cast<unsigned long long>(Stats.FragmentsInvalidatedByWrite),
        static_cast<unsigned long long>(Stats.StaleBytesDiscarded));
  for (unsigned C = 0; C != NumIBClasses; ++C) {
    IBClass Class = static_cast<IBClass>(C);
    Out += formatString("%-9s execs=%llu inline-hit-rate=%.2f%%\n",
                        ibClassName(Class),
                        static_cast<unsigned long long>(Stats.IBExecs[C]),
                        100.0 * Stats.inlineHitRate(Class));
  }
  if (Opts.Returns == ReturnStrategy::FastReturn)
    Out += formatString(
        "fast-return: direct=%llu fallback=%llu\n",
        static_cast<unsigned long long>(Stats.FastReturnDirect),
        static_cast<unsigned long long>(Stats.FastReturnFallback));
  if (Opts.Returns == ReturnStrategy::ShadowStack)
    Out += formatString(
        "shadow-stack: hits=%llu misses=%llu\n",
        static_cast<unsigned long long>(Stats.ShadowStackHits),
        static_cast<unsigned long long>(Stats.ShadowStackMisses));
  std::string MainStats = Main->statsSummary();
  if (!MainStats.empty())
    Out += MainStats + "\n";
  if (JumpH) {
    std::string JumpStats = JumpH->statsSummary();
    if (!JumpStats.empty())
      Out += "jumps: " + JumpStats + "\n";
  }
  if (CallH) {
    std::string CallStats = CallH->statsSummary();
    if (!CallStats.empty())
      Out += "calls: " + CallStats + "\n";
  }
  if (ReturnH) {
    std::string RetStats = ReturnH->statsSummary();
    if (!RetStats.empty())
      Out += RetStats + "\n";
  }
  return Out;
}
