//===- core/SdtOptions.cpp -------------------------------------*- C++ -*-===//
//
// Part of StrataIB. See SdtOptions.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "core/SdtOptions.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace sdt;
using namespace sdt::core;

const char *sdt::core::ibClassName(IBClass C) {
  switch (C) {
  case IBClass::Jump:
    return "ind-jump";
  case IBClass::Call:
    return "ind-call";
  case IBClass::Return:
    return "return";
  }
  assert(false && "invalid IB class");
  return "?";
}

const char *sdt::core::ibMechanismName(IBMechanism M) {
  switch (M) {
  case IBMechanism::Dispatcher:
    return "dispatcher";
  case IBMechanism::Ibtc:
    return "ibtc";
  case IBMechanism::Sieve:
    return "sieve";
  }
  assert(false && "invalid mechanism");
  return "?";
}

const char *sdt::core::returnStrategyName(ReturnStrategy S) {
  switch (S) {
  case ReturnStrategy::AsIndirect:
    return "as-indirect";
  case ReturnStrategy::ReturnCache:
    return "return-cache";
  case ReturnStrategy::FastReturn:
    return "fast-return";
  case ReturnStrategy::ShadowStack:
    return "shadow-stack";
  }
  assert(false && "invalid return strategy");
  return "?";
}

const char *sdt::core::execEngineName(ExecEngineKind E) {
  switch (E) {
  case ExecEngineKind::Plan:
    return "plan";
  case ExecEngineKind::Switch:
    return "switch";
  }
  assert(false && "invalid execution engine");
  return "?";
}

std::optional<ExecEngineKind>
sdt::core::parseExecEngine(std::string_view Name) {
  if (Name == "plan")
    return ExecEngineKind::Plan;
  if (Name == "switch")
    return ExecEngineKind::Switch;
  return std::nullopt;
}

std::string SdtOptions::describe() const {
  std::string Mech;
  switch (Mechanism) {
  case IBMechanism::Dispatcher:
    Mech = "dispatcher";
    break;
  case IBMechanism::Ibtc:
    Mech = formatString("ibtc(%s,%u%s,%s)",
                        IbtcShared ? "shared" : "private", IbtcEntries,
                        IbtcAssociativity > 1
                            ? formatString("x%u", IbtcAssociativity).c_str()
                            : "",
                        FullFlagSave ? "full" : "light");
    break;
  case IBMechanism::Sieve:
    Mech = formatString("sieve(%u,%s)", SieveBuckets,
                        FullFlagSave ? "full" : "light");
    break;
  }
  std::string Out = Mech;
  if (JumpMechanism && *JumpMechanism != Mechanism)
    Out += formatString(" jumps=%s", ibMechanismName(*JumpMechanism));
  if (CallMechanism && *CallMechanism != Mechanism)
    Out += formatString(" calls=%s", ibMechanismName(*CallMechanism));
  Out += formatString(" returns=%s", returnStrategyName(Returns));
  if (Returns == ReturnStrategy::ReturnCache)
    Out += formatString("(%u)", ReturnCacheEntries);
  if (InlineCacheDepth != 0)
    Out += formatString(" inline=%u", InlineCacheDepth);
  if (!LinkFragments)
    Out += " nolink";
  if (EnableTraces) {
    Out += formatString(" traces(hot=%u,max=%u", TraceHotThreshold,
                        MaxTraceBlocks);
    // Pass toggles only show when the optimizer deviates from
    // all-passes-on, keeping config keys short for the common sweeps.
    if (OptimizeTraces) {
      Out += ",opt";
      if (!(OptConstForward && OptDeadLink && OptElideGlue &&
            OptOutlineStubs && OptCoalesceFlags))
        Out += formatString("[%s%s%s%s%s]", OptConstForward ? "c" : "",
                            OptDeadLink ? "d" : "", OptElideGlue ? "g" : "",
                            OptOutlineStubs ? "o" : "",
                            OptCoalesceFlags ? "f" : "");
    }
    if (TraceSpeculate)
      Out += formatString(",spec=%u", TraceSpeculateThreshold);
    Out += ")";
  }
  // The default policy is omitted so pre-subsystem config strings (and
  // the result keys derived from them) are unchanged.
  if (CachePolicy != cachemgr::CachePolicyKind::FullFlush)
    Out += formatString(" cache=%s", cachemgr::cachePolicyName(CachePolicy));
  return Out;
}
