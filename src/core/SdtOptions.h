//===- core/SdtOptions.h - SDT configuration ---------------------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every knob the paper sweeps, in one configuration struct: which IB
/// translation mechanism backs indirect jumps and calls, how returns are
/// handled, table/bucket sizes, flag-save flavour, inline-cache depth, and
/// fragment-cache parameters.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_CORE_SDTOPTIONS_H
#define STRATAIB_CORE_SDTOPTIONS_H

#include "cachemgr/CachePolicy.h"
#include "support/Hashing.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace sdt {
namespace core {

/// The three dynamic indirect-branch classes the paper distinguishes.
enum class IBClass : uint8_t { Jump = 0, Call = 1, Return = 2 };

inline constexpr unsigned NumIBClasses = 3;

/// Returns "ind-jump", "ind-call", or "return".
const char *ibClassName(IBClass C);

/// Which mechanism translates indirect jump/call targets.
enum class IBMechanism : uint8_t {
  /// Baseline: every IB re-enters the dispatcher (full context switch +
  /// translation-map lookup).
  Dispatcher,
  /// Indirect Branch Translation Cache: a data-cache-resident hash table
  /// of (guest target, translated target) pairs probed by inline code.
  Ibtc,
  /// The sieve: an instruction-cache-resident dispatch structure — the
  /// target hashes into a bucket of compare-and-branch stubs in the
  /// fragment cache.
  Sieve,
};

/// Returns "dispatcher", "ibtc", or "sieve".
const char *ibMechanismName(IBMechanism M);

/// How `ret` instructions are translated.
enum class ReturnStrategy : uint8_t {
  /// Returns go through the same mechanism as other IBs.
  AsIndirect,
  /// A dedicated direct-mapped return cache.
  ReturnCache,
  /// Fast returns: calls write the *translated* return address into the
  /// link register, so a return is a bare jump (with a transparency
  /// fallback when the link value is still a guest address).
  FastReturn,
  /// A software shadow stack: calls push (guest return address,
  /// translated address) pairs; returns pop and compare. Fully
  /// transparent (the link register keeps its guest value), at the cost
  /// of per-call pushes and a memory-indirect jump per return.
  ShadowStack,
};

/// Returns "as-indirect", "return-cache", "fast-return", or
/// "shadow-stack".
const char *returnStrategyName(ReturnStrategy S);

/// Which simulator execution engine runs translated fragments. Both
/// produce bit-identical modeled cycles, cache states, and stats; the
/// knob trades simulator wall-clock against per-instruction
/// observability (docs/ExecutionEngine.md). Env override: STRATAIB_EXEC.
enum class ExecEngineKind : uint8_t {
  /// Pre-decoded execution plans: straight-line non-CTI runs fused into
  /// superops with batched timing charges, dispatched via a threaded
  /// (computed-goto) table. The default. Automatically deoptimizes to
  /// the switch interpreter when exact per-instruction observation is
  /// required (trace sink, execution-probe plugins, SMC-dirtied
  /// fragments).
  Plan,
  /// The legacy per-instruction switch interpreter.
  Switch,
};

/// Returns "plan" or "switch".
const char *execEngineName(ExecEngineKind E);

/// Parses an execution-engine name ("plan" or "switch"); nullopt on
/// anything else.
std::optional<ExecEngineKind> parseExecEngine(std::string_view Name);

/// Full SDT configuration.
struct SdtOptions {
  IBMechanism Mechanism = IBMechanism::Ibtc;
  ReturnStrategy Returns = ReturnStrategy::AsIndirect;

  /// Per-class overrides: translate indirect jumps (or calls) with a
  /// different mechanism than `Mechanism`. An overridden class gets its
  /// own mechanism instance (own tables/stubs); classes without an
  /// override share the main instance.
  std::optional<IBMechanism> JumpMechanism;
  std::optional<IBMechanism> CallMechanism;

  // --- IBTC ---------------------------------------------------------------
  /// Entries per IBTC table (power of two).
  uint32_t IbtcEntries = 4096;
  /// One table shared by all sites (true) or one table per IB site.
  bool IbtcShared = true;
  /// Hash used to index IBTC tables.
  HashKind IbtcHash = HashKind::ShiftMask;
  /// Ways per IBTC set (power of two, <= IbtcEntries). 1 = direct-mapped
  /// (the classic organisation); higher associativity trades extra inline
  /// probes for fewer conflict evictions.
  uint32_t IbtcAssociativity = 1;
  /// Adaptive sizing: start at IbtcEntries and quadruple a table whenever
  /// conflict replacements exceed a quarter of its capacity (rehashing
  /// the live entries), up to IbtcMaxEntries. Sizes the table to the
  /// program instead of provisioning for the worst case.
  bool IbtcAdaptive = false;
  uint32_t IbtcMaxEntries = 65536;

  // --- Sieve ---------------------------------------------------------------
  /// Number of sieve buckets (power of two).
  uint32_t SieveBuckets = 4096;
  /// Hash used to pick a sieve bucket.
  HashKind SieveHash = HashKind::ShiftMask;

  // --- Shared lookup-code options -----------------------------------------
  /// Preserve condition codes around inline lookup code the expensive
  /// architectural way (pushf-style) instead of the light way
  /// (lahf-style). The paper's headline x86 ablation.
  bool FullFlagSave = false;

  /// Inline cache entries emitted at each IB site before falling back to
  /// the configured mechanism. 0 disables inlining.
  unsigned InlineCacheDepth = 0;

  // --- Return cache ------------------------------------------------------
  uint32_t ReturnCacheEntries = 512;

  // --- Shadow stack -----------------------------------------------------
  /// Entries in the software shadow stack (wraps on overflow, like a
  /// hardware RAS).
  uint32_t ShadowStackDepth = 1024;
  /// Security mode (requires ReturnStrategy::ShadowStack): a return whose
  /// target does not match the shadow-stack top is treated as a
  /// return-address integrity violation and faults instead of falling
  /// back — the classic SDT-based ROP defence. Assumes call depth stays
  /// within ShadowStackDepth.
  bool EnforceReturnIntegrity = false;

  // --- Instrumentation (the "SDT as instrumentation platform" use) ------
  /// Inject a basic-block execution counter probe at every fragment
  /// entry (modeled cost: load + add + store on a per-block counter).
  /// Counts are reported via SdtEngine::blockCounts().
  bool InstrumentBlockCounts = false;

  // --- Fragment cache -------------------------------------------------------
  uint32_t FragmentCacheBytes = 8 * 1024 * 1024;
  uint32_t MaxFragmentInstrs = 128;
  /// Patch direct-branch exits to jump fragment-to-fragment (fragment
  /// linking). Disabling it recreates the pre-linking overhead world.
  bool LinkFragments = true;
  /// What happens when the cache fills: flush everything (the baseline)
  /// or evict a victim set chosen by the policy, coherently invalidating
  /// every structure that points into the freed ranges. See
  /// docs/CodeCacheManagement.md. Env override: STRATAIB_CACHE_POLICY.
  cachemgr::CachePolicyKind CachePolicy = cachemgr::CachePolicyKind::FullFlush;
  /// Fifo evicts until usage drops to this percentage of capacity.
  uint32_t CacheEvictTargetPct = 50;
  /// Generational promotes fragments with this many head executions into
  /// the hot generation.
  uint32_t CacheGenPromoteExecs = 8;
  /// Optional hook: when set, the engine builds its eviction policy
  /// through this factory instead of cachemgr::makeCachePolicy. The
  /// service layer uses it to wrap the configured policy with
  /// cross-engine global-budget accounting (cachemgr/GlobalBudget.h).
  /// Deliberately not part of describe(): a wrapper installed here must
  /// be decision-transparent, never changing any eviction outcome.
  std::function<std::unique_ptr<cachemgr::CachePolicy>(
      cachemgr::CachePolicyKind, const cachemgr::PolicyConfig &)>
      PolicyFactory;

  // --- Traces (NET-style superblocks) -------------------------------------
  /// Re-translate hot paths into linear traces: conditional branches are
  /// laid out so the observed direction falls through, direct jumps are
  /// eliminated, and direct calls are followed inline. Traces end at the
  /// first indirect branch — which is exactly why IB handling remains
  /// the residual overhead even in trace-based SDTs.
  bool EnableTraces = false;
  /// Fragment-entry executions before its path is recorded as a trace.
  uint32_t TraceHotThreshold = 50;
  /// Maximum control transfers recorded into one trace.
  uint32_t MaxTraceBlocks = 16;

  // --- Superblock optimizer (src/opt; docs/Superblocks.md) ----------------
  /// Run the redundancy-elimination pass pipeline over each stitched
  /// trace before code emission. Off by default: the unoptimized trace
  /// stream (and its cycle counts) is the established baseline.
  bool OptimizeTraces = false;
  /// Individual pass toggles (effective only with OptimizeTraces).
  bool OptConstForward = true;  ///< Forward-propagate constants.
  bool OptDeadLink = true;      ///< Kill dead link-register stores.
  bool OptElideGlue = true;     ///< Remove elided-jump glue ops.
  bool OptOutlineStubs = true;  ///< Move off-trace stubs to the tail.
  bool OptCoalesceFlags = true; ///< Share flag saves between guards.

  /// Speculative IB target inlining: extend traces through monomorphic
  /// indirect branches behind an emitted guard compare; a guard miss
  /// falls back to the bound mechanism's normal sequence.
  bool TraceSpeculate = false;
  /// Consecutive same-target observations at an IB site before the
  /// recorder speculates through it.
  uint32_t TraceSpeculateThreshold = 16;

  // --- Execution engine (src/exec; docs/ExecutionEngine.md) ---------------
  /// Which engine executes translated fragments. Deliberately not part
  /// of describe(): the engines are cycle-transparent by contract, so a
  /// config key must not fork on it.
  ExecEngineKind Engine = ExecEngineKind::Plan;

  /// Short human-readable description for benchmark output, e.g.
  /// "ibtc(shared,4096,light) returns=fast-return inline=1".
  std::string describe() const;
};

} // namespace core
} // namespace sdt

#endif // STRATAIB_CORE_SDTOPTIONS_H
