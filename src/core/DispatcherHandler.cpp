//===- core/DispatcherHandler.cpp ------------------------------*- C++ -*-===//
//
// Part of StrataIB. See DispatcherHandler.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "core/DispatcherHandler.h"

using namespace sdt;
using namespace sdt::core;

SiteCode DispatcherHandler::emitSite(uint32_t SiteId, IBClass Class,
                                     uint32_t GuestPc, FragmentCache &Cache,
                                     bool SpeculativeFallback) {
  (void)SiteId;
  (void)Class;
  (void)GuestPc;
  (void)SpeculativeFallback; // The trampoline is already minimal.
  // Just a trampoline to the dispatcher.
  uint32_t Bytes = 8;
  return {Cache.allocateBytes(Bytes), Bytes};
}

LookupOutcome DispatcherHandler::lookup(uint32_t SiteId, uint32_t GuestTarget,
                                        arch::TimingModel *Timing) {
  (void)Timing; // Inline cost is just the trampoline jump the engine
                // already charged; the dispatcher path charges the rest.
  countLookup(/*Hit=*/false, SiteId, GuestTarget);
  return {};
}

void DispatcherHandler::record(uint32_t SiteId, uint32_t GuestTarget,
                               uint32_t HostEntryAddr,
                               arch::TimingModel *Timing) {
  (void)SiteId;
  (void)GuestTarget;
  (void)HostEntryAddr;
  (void)Timing; // Nothing to install: the next execution misses again.
}
