#!/usr/bin/env sh
# Runs every experiment and ablation binary, writing one output file per
# experiment under results/ plus a combined log and a machine-readable
# summary (results/bench_summary.json). Usage:
#   scripts/run_all_experiments.sh [build-dir] [scale] [jobs]
# `jobs` is forwarded as STRATAIB_JOBS to every binary: each experiment
# fans its measurement cells across that many worker threads (0 = one
# per hardware thread). Cycle counts are identical for any job count.
set -eu

BUILD="${1:-build}"
SCALE="${2:-20}"
JOBS="${3:-${STRATAIB_JOBS:-0}}"
OUT="results"
mkdir -p "$OUT" "$OUT/summary"

if [ ! -d "$BUILD/bench" ]; then
  echo "error: '$BUILD/bench' not found; build first:" >&2
  echo "  cmake -B $BUILD -G Ninja && cmake --build $BUILD" >&2
  exit 1
fi

: > "$OUT/all_experiments.txt"
for BIN in "$BUILD"/bench/*; do
  [ -f "$BIN" ] && [ -x "$BIN" ] || continue # Skip CMake artifacts.
  NAME=$(basename "$BIN")
  case "$NAME" in
    micro_primitives) continue ;; # google-benchmark; run separately
    *.cmake|*.a) continue ;;
  esac
  echo "== $NAME (STRATAIB_SCALE=$SCALE STRATAIB_JOBS=$JOBS) =="
  STRATAIB_SCALE="$SCALE" STRATAIB_JOBS="$JOBS" \
    STRATAIB_SUMMARY="$OUT/summary/$NAME.json" \
    "$BIN" | tee "$OUT/$NAME.txt" \
    >> "$OUT/all_experiments.txt"
  echo >> "$OUT/all_experiments.txt"
done

# Merge the per-experiment JSON documents into one machine-readable file.
{
  printf '{\n"experiments": [\n'
  FIRST=1
  for J in "$OUT"/summary/*.json; do
    [ -f "$J" ] || continue
    [ "$FIRST" = 1 ] || printf ',\n'
    FIRST=0
    cat "$J"
  done
  printf ']\n}\n'
} > "$OUT/bench_summary.json"

echo "== micro_primitives =="
"$BUILD"/bench/micro_primitives --benchmark_min_time=0.05 \
  | tee "$OUT/micro_primitives.txt" >> "$OUT/all_experiments.txt" 2>&1

echo "done: outputs in $OUT/ (summary: $OUT/bench_summary.json)"
