#!/usr/bin/env sh
# Runs every experiment and ablation binary, writing one output file per
# experiment under results/ plus a combined log. Usage:
#   scripts/run_all_experiments.sh [build-dir] [scale]
set -eu

BUILD="${1:-build}"
SCALE="${2:-20}"
OUT="results"
mkdir -p "$OUT"

if [ ! -d "$BUILD/bench" ]; then
  echo "error: '$BUILD/bench' not found; build first:" >&2
  echo "  cmake -B $BUILD -G Ninja && cmake --build $BUILD" >&2
  exit 1
fi

: > "$OUT/all_experiments.txt"
for BIN in "$BUILD"/bench/*; do
  [ -f "$BIN" ] && [ -x "$BIN" ] || continue # Skip CMake artifacts.
  NAME=$(basename "$BIN")
  case "$NAME" in
    micro_primitives) continue ;; # google-benchmark; run separately
    *.cmake|*.a) continue ;;
  esac
  echo "== $NAME (STRATAIB_SCALE=$SCALE) =="
  STRATAIB_SCALE="$SCALE" "$BIN" | tee "$OUT/$NAME.txt" \
    >> "$OUT/all_experiments.txt"
  echo >> "$OUT/all_experiments.txt"
done

echo "== micro_primitives =="
"$BUILD"/bench/micro_primitives --benchmark_min_time=0.05 \
  | tee "$OUT/micro_primitives.txt" >> "$OUT/all_experiments.txt" 2>&1

echo "done: outputs in $OUT/"
