#!/usr/bin/env sh
# Runs every experiment and ablation binary, writing one output file per
# experiment under results/ plus a combined log and a machine-readable
# summary (results/bench_summary.json). Usage:
#   scripts/run_all_experiments.sh [build-dir] [scale] [jobs]
# `jobs` is forwarded as STRATAIB_JOBS to every binary: each experiment
# fans its measurement cells across that many worker threads (0 = one
# per hardware thread). Cycle counts are identical for any job count.
#
# When STRATAIB_TRACE is set in the environment, each experiment writes
# event traces under results/traces/<experiment>/ (see docs/Tracing.md).
#
# STRATAIB_CACHE_POLICY / STRATAIB_CACHE_BYTES pass through to every
# binary (docs/CodeCacheManagement.md): the whole suite re-runs under a
# different eviction policy or cache capacity without code changes, and
# every cell in results/bench_summary.json records the effective
# `cache_policy` and `cache_bytes`, so summaries from different policy
# runs stay distinguishable after merging. e14_cache_pressure sweeps
# these knobs itself — leave them unset when its sweep is the point.
#
# STRATAIB_PREDICTOR / STRATAIB_BTB_ENTRIES likewise pass through
# (docs/TimingModel.md): the whole suite re-runs under a different
# indirect-branch predictor organisation (none, btb, ibtb, perfect;
# entries must be a power of two), and every cell records the effective
# `predictor` plus ib_lookups / ib_mispredict_rate. e17_predictor_quality
# sweeps the predictor family itself: pinning it from the environment
# collapses its predictor axis, so it prints a note and skips its
# ranking-inversion check — leave these unset when its sweep is the
# point. Garbage values exit 2 before any cell runs.
#
# STRATAIB_TENANTS / STRATAIB_GLOBAL_CACHE_BYTES / STRATAIB_ZIPF_S /
# STRATAIB_WARM_START configure the translation service
# (docs/Service.md): tenant count, the global fragment-cache budget
# (0 = auto-size from probed footprints), the Zipf exponent of the
# admission trace in hundredths, and whether snapshots rehydrate.
# e18_multitenant sweeps the {isolation, shared} x {cold, warm} grid
# itself: pinning any of these collapses an axis, so it prints a note
# and skips its acceptance checks — leave them unset when its sweep is
# the point. Garbage values exit 2 before any cell runs.
#
# STRATAIB_PLUGINS attaches instrumentation plugins to every measured
# run (docs/Plugins.md): a comma-separated subset of {coverage, ibedges,
# memcheck}, or "none" to force plugins off. Instrumented cells append
# " plugins(<spec>)" to their summary `config` string and record per-
# plugin end-of-run metrics under `plugin_metrics`, so instrumented and
# bare summaries stay distinguishable after merging. e19_instrumentation
# sweeps the plugin axis itself: pinning it collapses that axis, so it
# prints a note and skips its overhead acceptance checks — leave it
# unset when its sweep is the point. An unknown plugin name exits 2
# before any cell runs.
#
# STRATAIB_EXEC selects the simulator's execution engine
# (docs/ExecutionEngine.md): "plan" (the default pre-decoded fused
# engine) or "switch" (the legacy per-instruction interpreter). The two
# are bit-identical on every modeled number — cycles, stats, cache
# states — so the whole suite re-runs under either engine with byte-
# identical summaries apart from the wall-clock fields; each summary
# records the harness default under top-level `exec_engine` and what
# actually ran per cell under `engine` (plus `sim_wall_ms` and
# `guest_instrs_per_sec`). e20_sim_throughput sweeps the engine axis
# itself: pinning it collapses the plan-vs-switch comparison, so it
# prints a note and skips its speedup acceptance — leave it unset when
# its sweep is the point. Any other value exits 2 before any cell runs.
#
# The merged results/bench_summary.json also records each driver's
# wall-clock under "driver_wall_ms" (whole-binary host milliseconds,
# workload build + native baselines + all cells), so suite-level
# throughput changes are visible run over run without re-deriving them
# from per-cell numbers.
#
# Any experiment that crashes or exits non-zero aborts the run with a
# non-zero exit status, and no partial summary is merged into
# results/bench_summary.json.
set -eu

BUILD="${1:-build}"
SCALE="${2:-20}"
JOBS="${3:-${STRATAIB_JOBS:-0}}"
OUT="results"
mkdir -p "$OUT" "$OUT/summary"

if [ ! -d "$BUILD/bench" ]; then
  echo "error: '$BUILD/bench' not found; build first:" >&2
  echo "  cmake -B $BUILD -G Ninja && cmake --build $BUILD" >&2
  exit 1
fi

# `cmd | tee` under `set -eu` reports tee's status, not cmd's, so a
# crashed experiment would sail through a pipeline unnoticed. Run each
# binary with its output redirected to the per-experiment file, echo the
# file on success, and abort (dropping the partial summary) on failure.
# Each successful driver's whole-binary wall-clock is appended to
# WALL_TMP ("<name> <ms>" per line) for the driver_wall_ms block of the
# merged summary.
WALL_TMP="$OUT/.driver_wall.$$"
: > "$WALL_TMP"
trap 'rm -f "$WALL_TMP"' EXIT

run_experiment() {
  NAME="$1"
  shift
  START_NS=$(date +%s%N)
  if "$@" > "$OUT/$NAME.txt" 2>&1; then
    END_NS=$(date +%s%N)
    printf '%s %s\n' "$NAME" $(( (END_NS - START_NS) / 1000000 )) \
      >> "$WALL_TMP"
    cat "$OUT/$NAME.txt" >> "$OUT/all_experiments.txt"
  else
    STATUS=$?
    cat "$OUT/$NAME.txt"
    echo "error: $NAME failed with exit status $STATUS" >&2
    rm -f "$OUT/summary/$NAME.json"
    exit "$STATUS"
  fi
}

: > "$OUT/all_experiments.txt"
for BIN in "$BUILD"/bench/*; do
  [ -f "$BIN" ] && [ -x "$BIN" ] || continue # Skip CMake artifacts.
  NAME=$(basename "$BIN")
  case "$NAME" in
    micro_primitives) continue ;; # google-benchmark; run separately
    *.cmake|*.a) continue ;;
  esac
  echo "== $NAME (STRATAIB_SCALE=$SCALE STRATAIB_JOBS=$JOBS${STRATAIB_CACHE_POLICY:+ STRATAIB_CACHE_POLICY=$STRATAIB_CACHE_POLICY}${STRATAIB_PREDICTOR:+ STRATAIB_PREDICTOR=$STRATAIB_PREDICTOR}${STRATAIB_BTB_ENTRIES:+ STRATAIB_BTB_ENTRIES=$STRATAIB_BTB_ENTRIES}${STRATAIB_PLUGINS:+ STRATAIB_PLUGINS=$STRATAIB_PLUGINS}) =="
  TRACE_ENV=""
  if [ -n "${STRATAIB_TRACE:-}" ]; then
    mkdir -p "$OUT/traces/$NAME"
    TRACE_ENV="$OUT/traces/$NAME/trace"
  fi
  run_experiment "$NAME" \
    env STRATAIB_SCALE="$SCALE" STRATAIB_JOBS="$JOBS" \
      STRATAIB_SUMMARY="$OUT/summary/$NAME.json" \
      ${TRACE_ENV:+STRATAIB_TRACE="$TRACE_ENV"} \
      "$BIN"
  echo >> "$OUT/all_experiments.txt"
done

echo "== micro_primitives =="
run_experiment micro_primitives \
  "$BUILD"/bench/micro_primitives --benchmark_min_time=0.05

# Merge the per-experiment JSON documents into one machine-readable file,
# led by the per-driver wall-clock block recorded above. Only reached
# when every experiment (micro_primitives included) succeeded; empty
# documents from an interrupted write are skipped rather than corrupting
# the merge.
{
  printf '{\n"driver_wall_ms": {\n'
  FIRST=1
  while read -r NAME MS; do
    [ "$FIRST" = 1 ] || printf ',\n'
    FIRST=0
    printf '"%s": %s' "$NAME" "$MS"
  done < "$WALL_TMP"
  printf '\n},\n"experiments": [\n'
  FIRST=1
  for J in "$OUT"/summary/*.json; do
    [ -s "$J" ] || continue
    [ "$FIRST" = 1 ] || printf ',\n'
    FIRST=0
    cat "$J"
  done
  printf ']\n}\n'
} > "$OUT/bench_summary.json"

echo "done: outputs in $OUT/ (summary: $OUT/bench_summary.json)"
