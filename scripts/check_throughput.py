#!/usr/bin/env python3
"""Throughput-regression guard for the simulator's execution engines.

Thin wrapper over check_perf.py --wall: runs a bench binary (normally
bench/e20_sim_throughput) and compares the per-(config, engine) geo-mean
guest_instrs_per_sec against a checked-in baseline
(scripts/throughput_baseline.json). Wall-clock is host noise — these are
samples, not the exact numbers the slowdown guard sees — so the default
threshold is a deliberately generous 60% and only a *drop* past it
fails: the guard exists to catch the plan engine silently falling back
to the switch path (or fusion collapsing), not 10% scheduler jitter.
Run pinned to one job (the ctest entry sets STRATAIB_JOBS=1): parallel
cells time-slice a core and make every per-cell wall reading garbage.

Regenerate the baseline after an intentional change (or on a new
machine class):

  STRATAIB_JOBS=1 python3 scripts/check_throughput.py \
      --bench build/bench/e20_sim_throughput \
      --baseline scripts/throughput_baseline.json --update
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_perf


def main():
    argv = ["--wall"] + sys.argv[1:]
    if not any(a == "--threshold" or a.startswith("--threshold=")
               for a in argv):
        argv += ["--threshold", "60"]
    return check_perf.main(argv)


if __name__ == "__main__":
    sys.exit(main())
