#!/usr/bin/env python3
"""Perf-regression guard for StrataIB bench binaries.

Runs a bench binary with STRATAIB_SUMMARY set, computes the geo-mean
simulated slowdown per configuration from the emitted JSON, and compares
against a checked-in baseline. The simulator is deterministic, so at a
fixed workload scale the slowdowns are exact numbers, not samples: any
drift is a real behaviour change, and the tolerance only exists to let
intentional small perf trade-offs land without churning the baseline.

Fail conditions (exit 1):
  - any per-config geo-mean regresses more than --threshold (default 2%)
    over the baseline value;
  - the overall geo-mean across all cells regresses more than the
    threshold;
  - a config recorded in the baseline disappears from the bench output
    (renames must update the baseline deliberately).

New configs not in the baseline are reported but do not fail; improvements
beyond the threshold are flagged as a hint to refresh the baseline.

With --wall the guarded metric flips from modeled slowdown to simulator
throughput (the per-cell guest_instrs_per_sec emitted by the bench
harness), grouped by config *and* execution engine so a plan-engine rate
is never compared against a switch-engine baseline. Wall-clock is host
noise by definition — unlike slowdowns these numbers are samples, not
exact — so wall baselines want a much larger threshold (the throughput
guard uses 60%) and only a *drop* beyond it fails; scripts/
check_throughput.py is the thin wrapper the ctest guard runs.

Regenerate the baseline after an intentional perf change:

  python3 scripts/check_perf.py --bench build/bench/e16_superblock_opt \
      --baseline scripts/perf_baseline.json --update
"""

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile


def geo_mean(values):
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_bench(bench, scale, jobs):
    fd, summary_path = tempfile.mkstemp(prefix="check_perf_", suffix=".json")
    os.close(fd)
    env = dict(os.environ)
    env["STRATAIB_SUMMARY"] = summary_path
    env["STRATAIB_SCALE"] = str(scale)
    if jobs:
        env["STRATAIB_JOBS"] = str(jobs)
    try:
        proc = subprocess.run(
            [bench], env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            raise SystemExit(
                f"check_perf: {bench} exited with {proc.returncode}")
        with open(summary_path, "r", encoding="utf-8") as f:
            return json.load(f)
    finally:
        os.unlink(summary_path)


def collect_geo_means(summary, wall=False):
    by_config = {}
    for cell in summary.get("cells", []):
        if cell.get("kind") != "sdt":
            continue
        if wall:
            # Group by engine as well: the same options under plan and
            # switch have legitimately different throughput, and a
            # baseline captured under one must never gate the other.
            key = f"{cell['config']} engine={cell.get('engine', '?')}"
            value = cell.get("guest_instrs_per_sec", 0.0)
            if value <= 0.0:
                continue
        else:
            key = cell["config"]
            value = cell["slowdown"]
        by_config.setdefault(key, []).append(value)
    means = {cfg: geo_mean(vals) for cfg, vals in sorted(by_config.items())}
    overall = geo_mean([v for vals in by_config.values() for v in vals])
    return means, overall


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", required=True,
                    help="bench binary to run (must honour STRATAIB_SUMMARY)")
    ap.add_argument("--baseline", required=True,
                    help="checked-in baseline JSON path")
    ap.add_argument("--scale", type=int, default=3,
                    help="STRATAIB_SCALE for the run (default 3)")
    ap.add_argument("--jobs", type=int, default=0,
                    help="STRATAIB_JOBS override (0 = leave to the binary)")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="allowed geo-mean regression in percent (default 2)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from this run and exit")
    ap.add_argument("--wall", action="store_true",
                    help="guard guest_instrs_per_sec (higher is better, "
                         "grouped by config+engine) instead of slowdown")
    args = ap.parse_args(argv)

    summary = run_bench(args.bench, args.scale, args.jobs)
    means, overall = collect_geo_means(summary, wall=args.wall)
    if not means:
        raise SystemExit("check_perf: bench summary contains no usable "
                         "sdt cells")

    metric = "wall" if args.wall else "slowdown"
    bench_name = summary.get("experiment", os.path.basename(args.bench))
    if args.update:
        doc = {
            "bench": bench_name,
            "metric": metric,
            "scale": args.scale,
            "overall_geo_mean": round(overall, 6),
            "geo_means": {cfg: round(v, 6) for cfg, v in means.items()},
        }
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        shown = f"{overall / 1e6:.2f} Mi/s" if args.wall else f"{overall:.4f}x"
        print(f"check_perf: baseline written to {args.baseline} "
              f"({len(means)} configs, overall {shown})")
        return 0

    try:
        with open(args.baseline, "r", encoding="utf-8") as f:
            base = json.load(f)
    except FileNotFoundError:
        raise SystemExit(
            f"check_perf: baseline {args.baseline} not found; generate it "
            f"with --update")

    if base.get("scale") != args.scale:
        raise SystemExit(
            f"check_perf: baseline scale {base.get('scale')} != run scale "
            f"{args.scale}; regenerate with --update or pass --scale "
            f"{base.get('scale')}")
    base_metric = base.get("metric", "slowdown")
    if base_metric != metric:
        raise SystemExit(
            f"check_perf: baseline guards '{base_metric}' but this run "
            f"guards '{metric}'; pick the matching --wall setting or "
            f"regenerate with --update")

    # Slowdowns: lower is better. Wall throughput: higher is better.
    def fmt(v):
        return f"{v / 1e6:.2f} Mi/s" if args.wall else f"{v:.4f}x"

    def regressed(delta):
        return delta < -tol if args.wall else delta > tol

    tol = args.threshold / 100.0
    failures = []
    notes = []
    base_means = base.get("geo_means", {})
    for cfg, base_val in sorted(base_means.items()):
        if cfg not in means:
            failures.append(f"config vanished from bench output: {cfg}")
            continue
        cur = means[cfg]
        delta = (cur - base_val) / base_val
        line = f"{cfg}\n    baseline {fmt(base_val)}  now {fmt(cur)}  " \
               f"({delta * 100.0:+.2f}%)"
        if regressed(delta):
            failures.append(f"geo-mean regression past {args.threshold}%: "
                            f"{line}")
        elif regressed(-delta):
            notes.append(f"improved past threshold (refresh baseline?): "
                         f"{line}")
    for cfg in means:
        if cfg not in base_means:
            notes.append(f"new config not in baseline: {cfg} "
                         f"({fmt(means[cfg])})")

    base_overall = base.get("overall_geo_mean")
    if base_overall:
        delta = (overall - base_overall) / base_overall
        if regressed(delta):
            failures.append(
                f"overall geo-mean regression past {args.threshold}%: "
                f"baseline {fmt(base_overall)}  now {fmt(overall)}  "
                f"({delta * 100.0:+.2f}%)")

    for n in notes:
        print(f"check_perf: note: {n}")
    if failures:
        for f_ in failures:
            print(f"check_perf: FAIL: {f_}", file=sys.stderr)
        return 1
    print(f"check_perf: OK — {len(base_means)} configs within "
          f"{args.threshold}% of baseline (overall {fmt(overall)} vs "
          f"{fmt(base_overall)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
