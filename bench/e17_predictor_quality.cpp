//===- bench/e17_predictor_quality.cpp - E17: predictor-quality sweep -----===//
//
// Part of StrataIB.
//
// The modern sequel to the paper's x86-vs-SPARC crossover: which software
// IB mechanism wins depends on how well the *hardware* predicts the
// indirect jumps that mechanism emits. This experiment sweeps the
// mechanism shootout across the indirect-predictor family — the analytic
// bounds (none / perfect) and real organisations in between (small and
// default last-target BTBs, the tagged path-history iBTB) — and reports
// per-mechanism geo-mean overhead and IB-mispredict rates.
//
// Why a ranking flip is expected: the IBTC, the sieve, and fast returns
// all funnel every resolved transfer through one indirect (or
// return-shaped) jump, so their overhead scales with the indirect
// predictor's miss rate. Inline caches are the predictor-immune point in
// the design space — a hit resolves through gshare-predicted compares
// and a *direct* jump, never issuing the indirect jump at all — at the
// price of a guard chain on every lookup. When every indirect transfer
// mispredicts (none), paying the guards to skip the jump is the best
// configuration on the board; under perfect prediction the jump is
// nearly free and the same guards drop the configuration to dead last.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace sdt;
using namespace sdt::bench;

namespace {

struct Mechanism {
  const char *Label;
  core::SdtOptions Opts;
};

struct CellGroup {
  double GeoMean = 0.0;
  uint64_t Lookups = 0;
  uint64_t Mispredicts = 0;

  double rate() const {
    return Lookups == 0 ? 0.0
                        : static_cast<double>(Mispredicts) /
                              static_cast<double>(Lookups);
  }
};

} // namespace

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E17 (predictor quality)",
              "mechanism ranking vs indirect-predictor quality", Scale);
  BenchContext Ctx(Scale);

  // The STRATAIB_PREDICTOR / STRATAIB_BTB_ENTRIES knobs pass through
  // measure() and clobber every cell with one pinned configuration —
  // useful for re-running *other* experiments under a different
  // predictor, but it collapses this sweep's predictor axis, so the
  // ranking-inversion acceptance check below would be meaningless.
  auto envSet = [](const char *Name) {
    const char *V = std::getenv(Name);
    return V && *V;
  };
  const bool PredictorPinned =
      envSet("STRATAIB_PREDICTOR") || envSet("STRATAIB_BTB_ENTRIES");
  if (PredictorPinned)
    std::printf("note: STRATAIB_PREDICTOR/STRATAIB_BTB_ENTRIES pin every "
                "cell to one predictor\nconfiguration; the predictor axis "
                "below is collapsed and the ranking-inversion\ncheck is "
                "skipped. Unset them to run the real sweep.\n\n");

  std::vector<Mechanism> Mechanisms;
  {
    core::SdtOptions Ibtc;
    Ibtc.Mechanism = core::IBMechanism::Ibtc;
    Mechanisms.push_back({"ibtc", Ibtc});

    core::SdtOptions Sieve;
    Sieve.Mechanism = core::IBMechanism::Sieve;
    Mechanisms.push_back({"sieve", Sieve});

    core::SdtOptions FastRet;
    FastRet.Mechanism = core::IBMechanism::Ibtc;
    FastRet.Returns = core::ReturnStrategy::FastReturn;
    Mechanisms.push_back({"ibtc+fastret", FastRet});

    // The predictor-immune configuration: inline guards resolve hot
    // targets with gshare-predicted compares and a *direct* jump, so a
    // hit never issues the indirect jump at all. Expensive base cost,
    // zero exposure to indirect-predictor quality.
    core::SdtOptions Inline;
    Inline.Mechanism = core::IBMechanism::Ibtc;
    Inline.InlineCacheDepth = 2;
    Mechanisms.push_back({"ibtc+inline2", Inline});
  }

  // Weak → strong. The first two are the "weak end", the last two the
  // "strong end" of the acceptance check below.
  std::vector<arch::PredictorConfig> Predictors;
  {
    arch::PredictorConfig P = arch::x86Model().Predictor;
    P.Kind = arch::PredictorKind::None;
    Predictors.push_back(P);
    P.Kind = arch::PredictorKind::Btb;
    P.BtbEntries = 64;
    Predictors.push_back(P);
    P.BtbEntries = 512;
    Predictors.push_back(P);
    P.Kind = arch::PredictorKind::TaggedIbtb;
    P.IbtbWays = 4;
    P.IbtbHistoryBits = 8;
    Predictors.push_back(P);
    P.Kind = arch::PredictorKind::Perfect;
    Predictors.push_back(P);
  }

  std::vector<std::string> Workloads = BenchContext::allWorkloadNames();

  ParallelRunner Runner(Ctx, "e17_predictor_quality");
  // Ids[p][m][w]
  std::vector<std::vector<std::vector<size_t>>> Ids;
  for (const arch::PredictorConfig &P : Predictors) {
    arch::MachineModel Model = arch::withPredictor(arch::x86Model(), P);
    Ids.emplace_back();
    for (const Mechanism &M : Mechanisms) {
      Ids.back().emplace_back();
      for (const std::string &W : Workloads)
        Ids.back().back().push_back(Runner.enqueue(W, Model, M.Opts));
    }
  }
  Runner.runAll();

  // Groups[p][m]
  std::vector<std::vector<CellGroup>> Groups;
  for (size_t P = 0; P != Predictors.size(); ++P) {
    Groups.emplace_back();
    for (size_t M = 0; M != Mechanisms.size(); ++M) {
      std::vector<Measurement> Ms;
      CellGroup G;
      for (size_t W = 0; W != Workloads.size(); ++W) {
        const Measurement &Meas = Runner.result(Ids[P][M][W]);
        Ms.push_back(Meas);
        G.Lookups += Meas.SdtIndirectLookups + Meas.SdtReturnLookups;
        G.Mispredicts +=
            Meas.SdtIndirectMispredicts + Meas.SdtReturnMispredicts;
      }
      G.GeoMean = geoMeanSlowdown(Ms);
      Groups.back().push_back(G);
    }
  }

  std::vector<std::string> Header = {"predictor"};
  for (const Mechanism &M : Mechanisms) {
    Header.push_back(M.Label);
    Header.push_back(std::string(M.Label) + "-ibmr");
  }
  Header.push_back("winner");
  TableFormatter T(Header);

  auto winnerAt = [&](size_t P) {
    size_t Best = 0;
    for (size_t M = 1; M != Mechanisms.size(); ++M)
      if (Groups[P][M].GeoMean < Groups[P][Best].GeoMean)
        Best = M;
    return Best;
  };
  // Rank order of mechanisms by geo-mean under predictor config P.
  auto rankingAt = [&](size_t P) {
    std::vector<size_t> Order(Mechanisms.size());
    for (size_t M = 0; M != Order.size(); ++M)
      Order[M] = M;
    std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      return Groups[P][A].GeoMean < Groups[P][B].GeoMean;
    });
    return Order;
  };

  for (size_t P = 0; P != Predictors.size(); ++P) {
    T.beginRow().addCell(Predictors[P].describe());
    for (size_t M = 0; M != Mechanisms.size(); ++M)
      T.addCell(Groups[P][M].GeoMean, 3).addCell(Groups[P][M].rate(), 3);
    T.addCell(std::string(Mechanisms[winnerAt(P)].Label));
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("(geo-mean slowdowns over %zu workloads; *-ibmr = that "
              "mechanism's indirect+return\nmispredict rate during the "
              "translated run)\n\n",
              Workloads.size());

  // Acceptance check: the mechanism ranking must differ between the weak
  // end (none / small BTB) and the strong end (tagged iBTB / perfect).
  bool Inverted = false;
  for (size_t Weak = 0; Weak != 2 && !Inverted; ++Weak)
    for (size_t Strong = Predictors.size() - 2;
         Strong != Predictors.size() && !Inverted; ++Strong)
      Inverted = rankingAt(Weak) != rankingAt(Strong);

  for (size_t P = 0; P != Predictors.size(); ++P) {
    std::vector<size_t> Order = rankingAt(P);
    std::printf("%-14s ranking:", Predictors[P].describe().c_str());
    for (size_t M : Order)
      std::printf(" %s", Mechanisms[M].Label);
    std::printf("\n");
  }
  std::printf("\nranking inversion between weak and strong predictors: "
              "%s\n",
              PredictorPinned ? "SKIPPED (predictor pinned by env)"
              : Inverted      ? "YES"
                              : "NO");
  std::printf("Shape targets: with no indirect predictor the "
              "inline-guard configuration wins\noutright (its hits never "
              "issue an indirect jump); under perfect prediction the\n"
              "same guards make it the worst on the board. Fast returns "
              "take over as soon as\na RAS is usable, and the tagged "
              "path-history iBTB cuts the IBTC's mispredict\nrate well "
              "below the last-target BTB's.\n");
  return (Inverted || PredictorPinned) ? 0 : 1;
}
