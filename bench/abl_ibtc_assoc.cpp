//===- bench/abl_ibtc_assoc.cpp - Ablation: IBTC associativity ----*- C++ -*-===//
//
// Part of StrataIB.
//
// Ablation: table organisation. For capacity-constrained IBTC tables,
// set-associativity trades extra inline probes per lookup for fewer
// conflict evictions — worthwhile only while conflicts dominate.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "support/TableFormatter.h"

#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("A1 (Ablation: IBTC associativity)",
              "ways per set at small table capacities, x86 model", Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  TableFormatter T({"entries", "ways", "perlbmk", "gcc", "geomean-12",
                    "hit%perlbmk"});

  for (uint32_t Entries : {16u, 64u, 256u, 4096u}) {
    for (uint32_t Assoc : {1u, 2u, 4u}) {
      core::SdtOptions Opts;
      Opts.Mechanism = core::IBMechanism::Ibtc;
      Opts.IbtcEntries = Entries;
      Opts.IbtcAssociativity = Assoc;

      std::vector<Measurement> All;
      Measurement Perl, Gcc;
      for (const std::string &W : BenchContext::allWorkloadNames()) {
        Measurement M = Ctx.measure(W, Model, Opts);
        All.push_back(M);
        if (W == "perlbmk")
          Perl = M;
        if (W == "gcc")
          Gcc = M;
      }
      T.beginRow()
          .addCell(static_cast<uint64_t>(Entries))
          .addCell(static_cast<uint64_t>(Assoc))
          .addCell(Perl.slowdown(), 3)
          .addCell(Gcc.slowdown(), 3)
          .addCell(geoMeanSlowdown(All), 3)
          .addCell(100.0 * Perl.mainHitRate(), 2);
    }
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: at 16-64 entries associativity buys hit "
              "rate and wins; at 4096\nentries conflicts are already "
              "rare, so the extra probes are pure cost.\n");
  return 0;
}
