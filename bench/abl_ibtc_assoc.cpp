//===- bench/abl_ibtc_assoc.cpp - Ablation: IBTC associativity ----*- C++ -*-===//
//
// Part of StrataIB.
//
// Ablation: table organisation. For capacity-constrained IBTC tables,
// set-associativity trades extra inline probes per lookup for fewer
// conflict evictions — worthwhile only while conflicts dominate.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("A1 (Ablation: IBTC associativity)",
              "ways per set at small table capacities, x86 model", Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  TableFormatter T({"entries", "ways", "perlbmk", "gcc", "geomean-12",
                    "hit%perlbmk"});

  ParallelRunner Runner(Ctx, "abl_ibtc_assoc");
  struct Row {
    uint32_t Entries;
    uint32_t Assoc;
    std::vector<size_t> Ids;
  };
  std::vector<Row> Rows;
  for (uint32_t Entries : {16u, 64u, 256u, 4096u}) {
    for (uint32_t Assoc : {1u, 2u, 4u}) {
      core::SdtOptions Opts;
      Opts.Mechanism = core::IBMechanism::Ibtc;
      Opts.IbtcEntries = Entries;
      Opts.IbtcAssociativity = Assoc;

      Row R;
      R.Entries = Entries;
      R.Assoc = Assoc;
      for (const std::string &W : BenchContext::allWorkloadNames())
        R.Ids.push_back(Runner.enqueue(W, Model, Opts));
      Rows.push_back(std::move(R));
    }
  }
  Runner.runAll();

  std::vector<std::string> Names = BenchContext::allWorkloadNames();
  for (const Row &R : Rows) {
    std::vector<Measurement> All;
    Measurement Perl, Gcc;
    for (size_t I = 0; I != R.Ids.size(); ++I) {
      const Measurement &M = Runner.result(R.Ids[I]);
      All.push_back(M);
      if (Names[I] == "perlbmk")
        Perl = M;
      if (Names[I] == "gcc")
        Gcc = M;
    }
    T.beginRow()
        .addCell(static_cast<uint64_t>(R.Entries))
        .addCell(static_cast<uint64_t>(R.Assoc))
        .addCell(Perl.slowdown(), 3)
        .addCell(Gcc.slowdown(), 3)
        .addCell(geoMeanSlowdown(All), 3)
        .addCell(100.0 * Perl.mainHitRate(), 2);
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: at 16-64 entries associativity buys hit "
              "rate and wins; at 4096\nentries conflicts are already "
              "rare, so the extra probes are pure cost.\n");
  return 0;
}
