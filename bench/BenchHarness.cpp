//===- bench/BenchHarness.cpp ----------------------------------*- C++ -*-===//
//
// Part of StrataIB. See BenchHarness.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "plugin/PluginManager.h"
#include "support/Statistics.h"
#include "vm/GuestVM.h"
#include "workloads/Workloads.h"

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

using namespace sdt;
using namespace sdt::bench;

long sdt::bench::envNumberOr(const char *Name, long Fallback, long Min,
                             long Max) {
  const char *Env = std::getenv(Name);
  if (!Env || !*Env)
    return Fallback;
  errno = 0;
  char *End = nullptr;
  long V = std::strtol(Env, &End, 10);
  if (errno != 0 || End == Env || *End != '\0' || V < Min || V > Max) {
    std::fprintf(stderr, "bench: invalid %s='%s' (expected integer in "
                         "[%ld, %ld])\n",
                 Name, Env, Min, Max);
    std::exit(2);
  }
  return V;
}

uint32_t sdt::bench::scaleFromEnv(uint32_t Fallback) {
  return static_cast<uint32_t>(
      envNumberOr("STRATAIB_SCALE", Fallback, 1, 1000000));
}

std::string sdt::bench::tracePrefixFromEnv() {
  const char *Env = std::getenv("STRATAIB_TRACE");
  return Env ? std::string(Env) : std::string();
}

core::SdtOptions sdt::bench::withCacheEnvOverrides(core::SdtOptions Opts) {
  long CacheBytes =
      envNumberOr("STRATAIB_CACHE_BYTES", -1, 4096, INT32_MAX);
  if (CacheBytes >= 0)
    Opts.FragmentCacheBytes = static_cast<uint32_t>(CacheBytes);
  if (const char *Env = std::getenv("STRATAIB_CACHE_POLICY")) {
    if (*Env) {
      std::optional<cachemgr::CachePolicyKind> Kind =
          cachemgr::parseCachePolicy(Env);
      if (!Kind) {
        std::fprintf(stderr,
                     "bench: unknown STRATAIB_CACHE_POLICY '%s' (expected "
                     "full-flush, fifo, or generational)\n",
                     Env);
        std::exit(2);
      }
      Opts.CachePolicy = *Kind;
    }
  }
  return Opts;
}

core::SdtOptions
sdt::bench::withExecEngineEnvOverride(core::SdtOptions Opts) {
  if (const char *Env = std::getenv("STRATAIB_EXEC")) {
    if (*Env) {
      std::optional<core::ExecEngineKind> Kind = core::parseExecEngine(Env);
      if (!Kind) {
        std::fprintf(stderr,
                     "bench: unknown STRATAIB_EXEC '%s' (expected plan or "
                     "switch)\n",
                     Env);
        std::exit(2);
      }
      Opts.Engine = *Kind;
    }
  }
  return Opts;
}

arch::MachineModel
sdt::bench::withPredictorEnvOverrides(arch::MachineModel Model) {
  arch::PredictorConfig P = Model.Predictor;
  bool Overridden = false;
  if (const char *Env = std::getenv("STRATAIB_PREDICTOR")) {
    if (*Env) {
      std::optional<arch::PredictorKind> Kind =
          arch::parsePredictorKind(Env);
      if (!Kind) {
        std::fprintf(stderr,
                     "bench: unknown STRATAIB_PREDICTOR '%s' (expected "
                     "none, btb, ibtb, or perfect)\n",
                     Env);
        std::exit(2);
      }
      P.Kind = *Kind;
      Overridden = true;
    }
  }
  long Entries = envNumberOr("STRATAIB_BTB_ENTRIES", -1, 1, 1 << 24);
  if (Entries >= 0) {
    if ((Entries & (Entries - 1)) != 0) {
      std::fprintf(stderr,
                   "bench: STRATAIB_BTB_ENTRIES=%ld is not a power of "
                   "two\n",
                   Entries);
      std::exit(2);
    }
    P.BtbEntries = static_cast<uint32_t>(Entries);
    Overridden = true;
  }
  return Overridden ? arch::withPredictor(Model, P) : Model;
}

std::string sdt::bench::pluginSpecFromEnv(const std::string &CellSpec) {
  std::string Spec = CellSpec;
  if (const char *Env = std::getenv("STRATAIB_PLUGINS"))
    if (*Env)
      Spec = Env;
  if (Spec == "none")
    Spec.clear();
  // Validate eagerly so a typo'd knob fails the run instead of silently
  // measuring without instrumentation.
  Expected<std::unique_ptr<plugin::PluginManager>> Check =
      plugin::createPluginManager(Spec);
  if (!Check) {
    std::fprintf(stderr, "bench: bad plugin spec '%s': %s\n", Spec.c_str(),
                 Check.error().message().c_str());
    std::exit(2);
  }
  return Spec;
}

static bool writeTextFile(const std::string &Path, const std::string &Doc) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fwrite(Doc.data(), 1, Doc.size(), F);
  std::fputc('\n', F);
  return std::fclose(F) == 0;
}

/// Ring capacity for traced runs (STRATAIB_TRACE_EVENTS).
static size_t traceCapacityFromEnv() {
  return static_cast<size_t>(envNumberOr(
      "STRATAIB_TRACE_EVENTS",
      static_cast<long>(trace::TraceSink::DefaultCapacity), 1, INT32_MAX));
}

std::string sdt::bench::traceFileBase(const std::string &Prefix,
                                      const std::string &Workload,
                                      const std::string &ModelName,
                                      const core::SdtOptions &Opts) {
  std::string Base = Prefix + "_" + Workload + "_" + ModelName + "_" +
                     Opts.describe();
  // Keep the cell-identifying part filename-safe.
  for (size_t I = Prefix.size(); I < Base.size(); ++I) {
    char &C = Base[I];
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '-' || C == '.' || C == '_';
    if (!Ok)
      C = '-';
  }
  return Base;
}

trace::StatsExpectation sdt::bench::traceExpectations(core::SdtEngine &E) {
  trace::StatsExpectation Expect;
  const core::SdtStats &S = E.stats();
  Expect.DispatchEntries = S.DispatchEntries;
  Expect.FragmentsTranslated = S.FragmentsTranslated;
  Expect.TracesBuilt = S.TracesBuilt;
  Expect.LinksPatched = S.LinksPatched;
  Expect.Flushes = S.Flushes;
  Expect.PartialEvictions = S.PartialEvictions;
  Expect.EvictedBytes = S.EvictedBytes;
  Expect.LinksUnlinked = S.LinksUnlinked;
  Expect.CodeWriteInvalidations = S.CodeWriteInvalidations;
  Expect.FragmentsInvalidatedByWrite = S.FragmentsInvalidatedByWrite;
  Expect.StaleBytesDiscarded = S.StaleBytesDiscarded;
  Expect.TracesOptimized = S.TracesOptimized;
  Expect.SpecGuardHits = S.SpecGuardHits;
  Expect.SpecGuardMisses = S.SpecGuardMisses;
  auto add = [&Expect](core::IBHandler *H) {
    for (trace::MechExpectation &M : Expect.Mechanisms)
      if (M.Name == H->name()) {
        M.Lookups += H->lookups();
        M.Hits += H->hits();
        return;
      }
    Expect.Mechanisms.push_back({H->name(), H->lookups(), H->hits()});
  };
  for (core::IBHandler *H : E.allHandlers())
    for (; H; H = H->backingHandler())
      add(H);
  return Expect;
}

void sdt::bench::printHeader(const std::string &ExperimentId,
                             const std::string &Title, uint32_t Scale) {
  std::printf("=== %s: %s ===\n", ExperimentId.c_str(), Title.c_str());
  std::printf("(workload scale %u; override with STRATAIB_SCALE; shapes, "
              "not absolute numbers, are the reproduction target)\n\n",
              Scale);
}

double sdt::bench::geoMeanSlowdown(const std::vector<Measurement> &Ms) {
  std::vector<double> Slowdowns;
  Slowdowns.reserve(Ms.size());
  for (const Measurement &M : Ms)
    Slowdowns.push_back(M.slowdown());
  return geometricMean(Slowdowns);
}

BenchContext::BenchContext(uint32_t Scale) : Scale(Scale) {}

std::vector<std::string> BenchContext::allWorkloadNames() {
  std::vector<std::string> Names;
  for (const workloads::WorkloadInfo &W : workloads::allWorkloads())
    Names.push_back(W.Name);
  return Names;
}

const isa::Program &BenchContext::program(const std::string &Workload) {
  Slot<isa::Program> *S;
  {
    std::lock_guard<std::mutex> Lock(SlotsMutex);
    S = &Programs[Workload];
  }
  std::call_once(S->Once, [&] {
    Expected<isa::Program> P = workloads::buildWorkload(Workload, Scale);
    if (!P) {
      std::fprintf(stderr, "bench: %s\n", P.error().message().c_str());
      std::exit(1);
    }
    S->Value = std::move(*P);
  });
  return *S->Value;
}

const BenchContext::NativeBaseline &
BenchContext::native(const std::string &Workload,
                     const arch::MachineModel &Model) {
  std::string Key = Workload + "|" + Model.Name;
  Slot<NativeBaseline> *S;
  {
    std::lock_guard<std::mutex> Lock(SlotsMutex);
    S = &Natives[Key];
  }
  std::call_once(S->Once, [&] {
    arch::TimingModel Timing(Model);
    vm::ExecOptions Exec;
    Exec.Timing = &Timing;
    auto VM = vm::GuestVM::create(program(Workload), Exec);
    if (!VM) {
      std::fprintf(stderr, "bench: %s\n", VM.error().message().c_str());
      std::exit(1);
    }
    NativeBaseline B;
    B.Result = (*VM)->run();
    if (!B.Result.finishedNormally()) {
      std::fprintf(stderr, "bench: native %s did not finish: %s\n",
                   Workload.c_str(), B.Result.FaultMessage.c_str());
      std::exit(1);
    }
    B.Cycles = Timing.totalCycles();
    S->Value = std::move(B);
  });
  return *S->Value;
}

vm::RunResult BenchContext::runNative(const std::string &Workload,
                                      bool CollectSiteTargets) {
  vm::ExecOptions Exec;
  Exec.CollectSiteTargets = CollectSiteTargets;
  auto VM = vm::GuestVM::create(program(Workload), Exec);
  if (!VM) {
    std::fprintf(stderr, "bench: %s\n", VM.error().message().c_str());
    std::exit(1);
  }
  return (*VM)->run();
}

Measurement BenchContext::measure(const std::string &Workload,
                                  const arch::MachineModel &RequestedModel,
                                  const core::SdtOptions &RequestedOpts,
                                  const std::string &PluginSpec) {
  const arch::MachineModel Model = withPredictorEnvOverrides(RequestedModel);
  const NativeBaseline &Base = native(Workload, Model);
  const core::SdtOptions Opts =
      withExecEngineEnvOverride(withCacheEnvOverrides(RequestedOpts));
  const std::string EffSpec = pluginSpecFromEnv(PluginSpec);

  arch::TimingModel Timing(Model);
  vm::ExecOptions Exec;
  Exec.Timing = &Timing;
  auto Engine = core::SdtEngine::create(program(Workload), Opts, Exec);
  if (!Engine) {
    std::fprintf(stderr, "bench: %s\n", Engine.error().message().c_str());
    std::exit(1);
  }

  std::unique_ptr<plugin::PluginManager> Mgr;
  if (!EffSpec.empty()) {
    // pluginSpecFromEnv already validated the spec.
    Mgr = std::move(*plugin::createPluginManager(EffSpec));
    (*Engine)->setPlugins(Mgr.get());
  }

  std::string TracePrefix = tracePrefixFromEnv();
  std::unique_ptr<trace::TraceSink> Sink;
  if (!TracePrefix.empty()) {
    Sink = std::make_unique<trace::TraceSink>(traceCapacityFromEnv());
    (*Engine)->setTraceSink(Sink.get());
  }

  auto RunStart = std::chrono::steady_clock::now();
  vm::RunResult Translated = (*Engine)->run();
  double SimWallMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - RunStart)
                         .count();

  if (Sink) {
    trace::StatsExpectation Expect = traceExpectations(**Engine);
    std::string Base = traceFileBase(TracePrefix, Workload, Model.Name, Opts);
    if (!trace::writeJsonl(*Sink, Base + ".jsonl", &Expect) ||
        !trace::writeChromeTrace(*Sink, Base + ".chrome.json")) {
      std::fprintf(stderr, "bench: cannot write trace files at %s.*\n",
                   Base.c_str());
      std::exit(1);
    }
    if (Mgr && !writeTextFile(Base + ".plugins.json", Mgr->reportJson())) {
      std::fprintf(stderr, "bench: cannot write plugin report at %s\n",
                   (Base + ".plugins.json").c_str());
      std::exit(1);
    }
  }

  Measurement M;
  M.NativeCycles = Base.Cycles;
  M.SdtCycles = Timing.totalCycles();
  for (size_t I = 0; I != M.SdtByCategory.size(); ++I)
    M.SdtByCategory[I] = Timing.cycles(static_cast<arch::CycleCategory>(I));
  M.Stats = (*Engine)->stats();
  M.MainLookups = (*Engine)->mainHandler().lookups();
  M.MainHits = (*Engine)->mainHandler().hits();
  const arch::BranchPredictor &Pred = Timing.predictor();
  M.SdtIndirectLookups = Pred.indirectLookups();
  M.SdtIndirectMispredicts = Pred.indirectMispredicts();
  M.SdtReturnLookups = Pred.returnLookups();
  M.SdtReturnMispredicts = Pred.returnMispredicts();
  M.NativeCti = Base.Result.Cti;
  M.Instructions = Base.Result.InstructionCount;
  M.SimWallMs = SimWallMs;
  M.Engine = core::execEngineName((*Engine)->activeEngine());
  if (Mgr) {
    M.PluginSpec = EffSpec;
    M.PluginMetrics = Mgr->metrics();
  }
  M.Transparent = Translated.Reason == Base.Result.Reason &&
                  Translated.Output == Base.Result.Output &&
                  Translated.Checksum == Base.Result.Checksum &&
                  Translated.InstructionCount ==
                      Base.Result.InstructionCount;
  if (!M.Transparent) {
    std::fprintf(stderr,
                 "bench: TRANSPARENCY VIOLATION on %s under %s: %s\n",
                 Workload.c_str(), Opts.describe().c_str(),
                 Translated.FaultMessage.c_str());
    std::exit(1);
  }
  return M;
}
