//===- bench/tab1_ib_stats.cpp - E1: dynamic IB statistics -------*- C++ -*-===//
//
// Part of StrataIB.
//
// Reproduces Table 1: dynamic indirect-branch statistics per benchmark —
// the mix of returns / indirect calls / indirect jumps, IB density, and
// per-site target fan-out. This is the workload characterisation every
// later experiment is interpreted against.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(10);
  printHeader("E1 (Table 1)",
              "dynamic indirect-branch statistics per benchmark", Scale);
  BenchContext Ctx(Scale);

  TableFormatter T({"benchmark", "profile", "instrs(k)", "ret/1k",
                    "icall/1k", "ijump/1k", "ib/1k", "ib-sites",
                    "max-fanout"});

  ParallelRunner Runner(Ctx, "tab1_ib_stats");
  std::vector<size_t> Ids;
  for (const workloads::WorkloadInfo &W : workloads::allWorkloads())
    Ids.push_back(Runner.enqueueNative(W.Name, /*CollectSiteTargets=*/true));
  Runner.runAll();

  size_t Next = 0;
  for (const workloads::WorkloadInfo &W : workloads::allWorkloads()) {
    const vm::RunResult &R = Runner.nativeResult(Ids[Next++]);
    double Instrs = static_cast<double>(R.InstructionCount);
    auto PerK = [Instrs](uint64_t N) {
      return 1000.0 * static_cast<double>(N) / Instrs;
    };
    size_t MaxFanOut = 0;
    for (const auto &[Site, Targets] : R.SiteTargets)
      MaxFanOut = std::max(MaxFanOut, Targets.size());

    T.beginRow()
        .addCell(std::string(W.Name))
        .addCell(std::string(W.IBProfile))
        .addCell(R.InstructionCount / 1000)
        .addCell(PerK(R.Cti.Returns), 2)
        .addCell(PerK(R.Cti.IndirectCalls), 2)
        .addCell(PerK(R.Cti.IndirectJumps), 2)
        .addCell(PerK(R.Cti.indirectTotal()), 2)
        .addCell(static_cast<uint64_t>(R.SiteTargets.size()))
        .addCell(static_cast<uint64_t>(MaxFanOut));
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: interpreter proxies (perlbmk, gap, parser) "
              "are ind-jump dominated\nwith high fan-out; call-bound "
              "proxies (gcc, crafty, vortex, eon) are return-heavy;\n"
              "gzip/mcf/bzip2 are the low-IB anchors.\n");
  return 0;
}
