//===- bench/e18_multitenant.cpp - E18: multi-tenant service --------------===//
//
// Part of StrataIB.
//
// Translation-as-a-service: many tenants share one SDT host through the
// EngineServer, which admits sessions from a Zipfian popularity trace,
// keeps every fragment cache under one global budget
// (STRATAIB_GLOBAL_CACHE_BYTES), and retains warm-start snapshots
// between a tenant's admissions. The experiment sweeps
//
//   mechanism {ibtc, sieve} x arbiter {isolation, shared-budget}
//                           x start   {cold, warm}
//
// over one fixed admission trace and reports per-tenant geo-mean
// overhead, translation cycles, warm-start hit counts, and the
// cross-tenant evictions each arbiter mode produces.
//
// Shape targets: warm starts replace nearly all Translate cycles with
// the far cheaper snapshot-load install cost (2 + bytes/16 per
// fragment), so repeat admissions of a popular tenant run close to its
// steady-state overhead. Isolation mode never touches another tenant's
// warm state (reclaims stay 0) but confines every tenant to one slice;
// shared-budget mode lets grants and snapshots share the pool and
// instead evicts the least-recently-active tenants' snapshots under
// pressure — the Zipf-popular tenants keep their warm state, the long
// tail loses it.
//
// The global budget auto-sizes from an untimed per-tenant sizing probe
// (see below) so retained warm state overflows the pool at every
// STRATAIB_SCALE; set STRATAIB_GLOBAL_CACHE_BYTES to pin it instead.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "service/EngineServer.h"
#include "service/ZipfTrace.h"
#include "support/Json.h"
#include "support/TableFormatter.h"
#include "trace/TraceExport.h"
#include "trace/TraceSink.h"
#include "vm/GuestVM.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

using namespace sdt;
using namespace sdt::bench;

namespace {

struct Mechanism {
  const char *Label;
  core::SdtOptions Opts;
};

/// One native baseline per tenant workload.
struct Baseline {
  uint64_t Cycles = 0;
  vm::RunResult Result;
};

/// Everything one swept cell produces.
struct CellResult {
  const char *Mech = nullptr;
  service::ArbiterMode Mode = service::ArbiterMode::Isolation;
  bool Warm = false;
  double GeoMean = 0.0;
  std::vector<double> TenantGeoMeans; ///< Indexed by tenant id.
  uint64_t TranslateCycles = 0;
  uint64_t SnapshotLoadCycles = 0;
  uint64_t WarmSessions = 0;
  uint64_t SnapshotLoads = 0;
  uint64_t SnapshotSaves = 0;
  uint64_t Reclaims = 0;          ///< Arbiter warm-state reclaims.
  uint64_t LedgerEvictions = 0;   ///< Cross-engine partial evictions.
  uint64_t LedgerFlushes = 0;
};

double geoMean(const std::vector<double> &Vs) {
  if (Vs.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Vs)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Vs.size()));
}

bool envSet(const char *Name) {
  const char *V = std::getenv(Name);
  return V && *V;
}

} // namespace

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E18 (multi-tenant service)",
              "global cache budget + warm-start snapshots", Scale);

  // Strict knobs: a typo'd value is a configuration error (exit 2), not
  // a silent fallback.
  uint32_t Tenants =
      static_cast<uint32_t>(envNumberOr("STRATAIB_TENANTS", 6, 1, 64));
  uint32_t GlobalBytes = static_cast<uint32_t>(
      envNumberOr("STRATAIB_GLOBAL_CACHE_BYTES", 0, 0, 1L << 30));
  if (GlobalBytes != 0 && GlobalBytes < 4096) {
    std::fprintf(stderr,
                 "bench: STRATAIB_GLOBAL_CACHE_BYTES must be 0 (auto) or "
                 ">= 4096, got %u\n",
                 GlobalBytes);
    return 2;
  }
  uint32_t ZipfS =
      static_cast<uint32_t>(envNumberOr("STRATAIB_ZIPF_S", 120, 0, 400));
  long WarmPin = envNumberOr("STRATAIB_WARM_START", -1, 0, 1);

  // Any pinned knob changes the contention picture the acceptance checks
  // assume, so they are skipped (the sweep itself still runs).
  const bool Pinned =
      envSet("STRATAIB_TENANTS") || envSet("STRATAIB_GLOBAL_CACHE_BYTES") ||
      envSet("STRATAIB_ZIPF_S") || envSet("STRATAIB_WARM_START");
  if (Pinned)
    std::printf("note: STRATAIB_TENANTS/STRATAIB_GLOBAL_CACHE_BYTES/"
                "STRATAIB_ZIPF_S/STRATAIB_WARM_START\npin the service "
                "configuration; the warm-vs-cold and shared-vs-isolation\n"
                "acceptance checks are skipped. Unset them for the "
                "canonical run.\n\n");

  std::vector<Mechanism> Mechanisms;
  {
    core::SdtOptions Ibtc;
    Ibtc.Mechanism = core::IBMechanism::Ibtc;
    Mechanisms.push_back({"ibtc", Ibtc});

    core::SdtOptions Sieve;
    Sieve.Mechanism = core::IBMechanism::Sieve;
    Mechanisms.push_back({"sieve", Sieve});
  }

  const arch::MachineModel Model = withPredictorEnvOverrides(arch::x86Model());

  // Tenant k runs workload k mod |suite| (the suite order is fixed, so
  // the tenant population is reproducible).
  std::vector<std::string> Suite = BenchContext::allWorkloadNames();
  std::vector<std::string> TenantWorkload(Tenants);
  std::vector<isa::Program> TenantProgram(Tenants);
  for (uint32_t T = 0; T != Tenants; ++T) {
    TenantWorkload[T] = Suite[T % Suite.size()];
    Expected<isa::Program> P =
        workloads::buildWorkload(TenantWorkload[T], Scale);
    if (!P) {
      std::fprintf(stderr, "bench: %s\n", P.error().message().c_str());
      return 1;
    }
    TenantProgram[T] = std::move(*P);
  }

  // Native baselines (one per distinct workload) for slowdowns and
  // transparency checks.
  std::map<std::string, Baseline> Natives;
  for (uint32_t T = 0; T != Tenants; ++T) {
    const std::string &W = TenantWorkload[T];
    if (Natives.count(W))
      continue;
    arch::TimingModel Timing(Model);
    vm::ExecOptions Exec;
    Exec.Timing = &Timing;
    auto VM = vm::GuestVM::create(TenantProgram[T], Exec);
    if (!VM) {
      std::fprintf(stderr, "bench: %s\n", VM.error().message().c_str());
      return 1;
    }
    Baseline B;
    B.Result = (*VM)->run();
    if (!B.Result.finishedNormally()) {
      std::fprintf(stderr, "bench: native %s did not finish: %s\n", W.c_str(),
                   B.Result.FaultMessage.c_str());
      return 1;
    }
    B.Cycles = Timing.totalCycles();
    Natives.emplace(W, std::move(B));
  }

  // Sizing probe: one untimed cold run per (tenant, mechanism) under a
  // roomy cache measures the session's real footprint; each tenant then
  // requests 1.25x that. The auto-sized global budget is the summed
  // requests, floored at (window * MinGrant + requests/2) so that even
  // when tiny footprints make the per-session MinGrant floor dominate
  // the in-flight grants, retained warm state still overflows the pool:
  // every admission runs, and shared-budget mode must evict warm state
  // under the Zipf trace at any scale.
  // RequestBytes[m][t].
  std::vector<std::vector<uint32_t>> RequestBytes(
      Mechanisms.size(), std::vector<uint32_t>(Tenants, 0));
  for (size_t M = 0; M != Mechanisms.size(); ++M) {
    for (uint32_t T = 0; T != Tenants; ++T) {
      core::SdtOptions Opts = withCacheEnvOverrides(Mechanisms[M].Opts);
      Opts.FragmentCacheBytes = 8u << 20;
      vm::ExecOptions Exec;
      auto Probe = core::SdtEngine::create(TenantProgram[T], Opts, Exec);
      if (!Probe) {
        std::fprintf(stderr, "bench: %s\n", Probe.error().message().c_str());
        return 1;
      }
      vm::RunResult R = (*Probe)->run();
      if (!R.finishedNormally()) {
        std::fprintf(stderr, "bench: probe %s/%s did not finish: %s\n",
                     TenantWorkload[T].c_str(), Mechanisms[M].Label,
                     R.FaultMessage.c_str());
        return 1;
      }
      uint32_t Used = (*Probe)->fragmentCache().usedBytes();
      RequestBytes[M][T] = Used + Used / 4;
    }
  }

  // One admission trace shared by every cell: same tenants, same order,
  // so the axes differ only in arbiter mode / warm start / mechanism.
  uint32_t Sessions = 5 * Tenants;
  std::vector<uint32_t> Trace =
      service::zipfTrace(Tenants, Sessions, ZipfS, /*Seed=*/0xE18C0FFEEULL);

  std::string TracePrefix = tracePrefixFromEnv();
  unsigned Workers = ParallelRunner::jobsFromEnv();

  std::vector<bool> WarmAxis;
  if (WarmPin < 0) {
    WarmAxis = {false, true};
  } else {
    WarmAxis = {WarmPin != 0};
  }
  const service::ArbiterMode Modes[] = {service::ArbiterMode::Isolation,
                                        service::ArbiterMode::SharedBudget};

  std::vector<CellResult> Cells;
  // JSON summary rows (one per tenant per cell), ParallelRunner-shaped
  // so scripts/check_perf.py can consume them unchanged.
  struct SummaryRow {
    std::string Workload;
    std::string Config;
    uint64_t NativeCycles = 0;
    uint64_t SdtCycles = 0;
    double Slowdown = 0.0;
    uint64_t Sessions = 0;
    bool Transparent = true;
  };
  std::vector<SummaryRow> SummaryRows;

  const uint32_t Window = 4;
  const uint32_t MinGrant = 4096;

  for (size_t M = 0; M != Mechanisms.size(); ++M) {
    uint64_t RequestSum = 0;
    for (uint32_t T = 0; T != Tenants; ++T)
      RequestSum += RequestBytes[M][T];
    uint32_t Budget =
        GlobalBytes != 0
            ? GlobalBytes
            : static_cast<uint32_t>(std::max<uint64_t>(
                  RequestSum, Window * MinGrant + RequestSum / 2));

    for (service::ArbiterMode Mode : Modes) {
      for (bool Warm : WarmAxis) {
        service::ServerConfig SC;
        SC.Mode = Mode;
        SC.GlobalCacheBytes = Budget;
        SC.MaxTenants = Tenants;
        SC.MinGrantBytes = MinGrant;
        SC.WarmStart = Warm;
        SC.Workers = Workers;
        SC.AdmissionWindow = Window;
        service::EngineServer Server(SC);

        core::SdtOptions Opts = withCacheEnvOverrides(Mechanisms[M].Opts);
        for (uint32_t T = 0; T != Tenants; ++T)
          Server.registerTenant(TenantWorkload[T], TenantProgram[T], Opts,
                                Model, RequestBytes[M][T]);

        trace::TraceSink Sink;
        if (!TracePrefix.empty())
          Server.setTraceSink(&Sink);

        std::vector<service::SessionResult> Results = Server.runTrace(Trace);

        CellResult Cell;
        Cell.Mech = Mechanisms[M].Label;
        Cell.Mode = Mode;
        Cell.Warm = Warm;
        std::vector<std::vector<double>> PerTenant(Tenants);
        std::vector<uint64_t> TenantSdtCycles(Tenants, 0);
        std::vector<bool> TenantTransparent(Tenants, true);
        std::vector<double> AllSlowdowns;
        for (const service::SessionResult &R : Results) {
          if (!R.EngineError.empty()) {
            std::fprintf(stderr, "bench: tenant %u session failed: %s\n",
                         R.Tenant, R.EngineError.c_str());
            return 1;
          }
          const Baseline &B = Natives.at(TenantWorkload[R.Tenant]);
          bool Transparent = R.Run.Reason == B.Result.Reason &&
                             R.Run.Output == B.Result.Output &&
                             R.Run.Checksum == B.Result.Checksum &&
                             R.Run.InstructionCount ==
                                 B.Result.InstructionCount;
          if (!Transparent) {
            std::fprintf(stderr,
                         "bench: tenant %u (%s) session not transparent "
                         "under %s/%s/%s\n",
                         R.Tenant, TenantWorkload[R.Tenant].c_str(),
                         Mechanisms[M].Label,
                         service::arbiterModeName(Mode),
                         Warm ? "warm" : "cold");
            TenantTransparent[R.Tenant] = false;
          }
          double Slow = static_cast<double>(R.TotalCycles) /
                        static_cast<double>(B.Cycles);
          PerTenant[R.Tenant].push_back(Slow);
          AllSlowdowns.push_back(Slow);
          TenantSdtCycles[R.Tenant] += R.TotalCycles;
          Cell.TranslateCycles += R.CyclesByCategory[static_cast<size_t>(
              arch::CycleCategory::Translate)];
          Cell.SnapshotLoadCycles += R.CyclesByCategory[static_cast<size_t>(
              arch::CycleCategory::SnapshotLoad)];
          Cell.WarmSessions += R.Warm ? 1 : 0;
        }
        Cell.GeoMean = geoMean(AllSlowdowns);
        Cell.TenantGeoMeans.resize(Tenants, 0.0);
        for (uint32_t T = 0; T != Tenants; ++T)
          Cell.TenantGeoMeans[T] = geoMean(PerTenant[T]);
        trace::StatsExpectation E = Server.expectations();
        Cell.SnapshotLoads = E.SnapshotLoads;
        Cell.SnapshotSaves = E.SnapshotSaves;
        Cell.Reclaims = Server.arbiter().reclaims();
        Cell.LedgerEvictions =
            Server.arbiter().ledger().PartialEvictions.load();
        Cell.LedgerFlushes = Server.arbiter().ledger().Flushes.load();

        if (!TracePrefix.empty()) {
          std::string Base =
              TracePrefix + "_e18_" + Mechanisms[M].Label + "_" +
              service::arbiterModeName(Mode) + (Warm ? "_warm" : "_cold");
          if (!trace::writeJsonl(Sink, Base + ".jsonl", &E) ||
              !trace::writeChromeTrace(Sink, Base + ".chrome.json")) {
            std::fprintf(stderr, "bench: cannot write trace files at %s.*\n",
                         Base.c_str());
            return 1;
          }
        }

        std::string Config = Opts.describe() + " server(" +
                             service::arbiterModeName(Mode) +
                             (Warm ? ",warm)" : ",cold)");
        for (uint32_t T = 0; T != Tenants; ++T) {
          SummaryRow Row;
          Row.Workload = TenantWorkload[T];
          Row.Config = Config;
          Row.NativeCycles = Natives.at(TenantWorkload[T]).Cycles;
          Row.SdtCycles = TenantSdtCycles[T];
          Row.Slowdown = Cell.TenantGeoMeans[T];
          Row.Sessions = PerTenant[T].size();
          Row.Transparent = TenantTransparent[T];
          SummaryRows.push_back(std::move(Row));
        }
        Cells.push_back(std::move(Cell));
      }
    }
  }

  // --- Report -------------------------------------------------------------
  TableFormatter T({"mechanism", "arbiter", "start", "geomean", "xlate-cyc",
                    "snapload-cyc", "warm", "snaps", "reclaims", "evicts"});
  for (const CellResult &C : Cells) {
    T.beginRow()
        .addCell(std::string(C.Mech))
        .addCell(std::string(service::arbiterModeName(C.Mode)))
        .addCell(C.Warm ? "warm" : "cold")
        .addCell(C.GeoMean, 3)
        .addCell(C.TranslateCycles)
        .addCell(C.SnapshotLoadCycles)
        .addCell(C.WarmSessions)
        .addCell(C.SnapshotSaves)
        .addCell(C.Reclaims)
        .addCell(C.LedgerEvictions + C.LedgerFlushes);
  }
  std::printf("%s\n", T.render().c_str());
  std::printf(
      "(%u tenants, %u sessions, zipf s=%.2f, budget=auto%s; geomean over "
      "all sessions\nvs the tenant's native run; warm = sessions started "
      "from a rehydrated snapshot;\nreclaims = warm-state evictions the "
      "arbiter performed; evicts = in-engine cache\nevictions+flushes "
      "across all tenants)\n\n",
      Tenants, Sessions, ZipfS / 100.0, GlobalBytes != 0 ? " (pinned)" : "");

  // Per-tenant view of the most contended configuration (first
  // mechanism, shared budget, warm) — the Zipf head keeps its snapshot,
  // the tail loses it.
  for (const CellResult &C : Cells) {
    if (C.Mode != service::ArbiterMode::SharedBudget || !C.Warm ||
        std::string(C.Mech) != Mechanisms[0].Label)
      continue;
    std::printf("per-tenant geo-mean (%s, shared, warm):", C.Mech);
    for (uint32_t Ten = 0; Ten != Tenants; ++Ten)
      std::printf(" t%u=%.3f", Ten, C.TenantGeoMeans[Ten]);
    std::printf("\n\n");
  }

  // --- JSON summary (ParallelRunner-compatible cells) ---------------------
  if (const char *Env = std::getenv("STRATAIB_SUMMARY")) {
    if (*Env) {
      support::JsonWriter W;
      W.beginObject();
      W.key("experiment").value("e18_multitenant");
      W.key("scale").value(Scale);
      W.key("jobs").value(static_cast<uint64_t>(Workers));
      W.key("tenants").value(Tenants);
      W.key("sessions").value(Sessions);
      W.key("cells").beginArray();
      for (const SummaryRow &Row : SummaryRows) {
        W.beginObject();
        W.key("kind").value("sdt");
        W.key("workload").value(Row.Workload);
        W.key("model").value(Model.Name);
        W.key("config").value(Row.Config);
        W.key("native_cycles").value(Row.NativeCycles);
        W.key("sdt_cycles").value(Row.SdtCycles);
        W.key("slowdown").value(Row.Slowdown);
        W.key("sessions").value(Row.Sessions);
        W.key("transparent").value(Row.Transparent);
        W.endObject();
      }
      W.endArray();
      W.endObject();
      std::FILE *F = std::fopen(Env, "w");
      if (!F) {
        std::fprintf(stderr, "bench: cannot write summary to %s\n", Env);
        return 1;
      }
      std::fwrite(W.str().data(), 1, W.str().size(), F);
      std::fputc('\n', F);
      std::fclose(F);
    }
  }

  for (const SummaryRow &Row : SummaryRows)
    if (!Row.Transparent)
      return 1;

  if (Pinned) {
    std::printf("acceptance: SKIPPED (service knobs pinned by env)\n");
    return 0;
  }

  // --- Acceptance ---------------------------------------------------------
  // (a) Warm starts must be measurably cheaper than cold: under
  //     isolation (snapshots never reclaimed) warm translation work
  //     drops by at least half; under shared budget it never rises.
  // (b) The arbiter modes must actually differ: shared-budget warm runs
  //     reclaim warm state under this budget, isolation never does.
  auto cellAt = [&](const char *Mech, service::ArbiterMode Mode,
                    bool Warm) -> const CellResult & {
    for (const CellResult &C : Cells)
      if (std::string(C.Mech) == Mech && C.Mode == Mode && C.Warm == Warm)
        return C;
    std::fprintf(stderr, "bench: missing cell\n");
    std::exit(1);
  };

  bool Ok = true;
  for (const Mechanism &M : Mechanisms) {
    const CellResult &IsoCold =
        cellAt(M.Label, service::ArbiterMode::Isolation, false);
    const CellResult &IsoWarm =
        cellAt(M.Label, service::ArbiterMode::Isolation, true);
    const CellResult &ShCold =
        cellAt(M.Label, service::ArbiterMode::SharedBudget, false);
    const CellResult &ShWarm =
        cellAt(M.Label, service::ArbiterMode::SharedBudget, true);

    bool WarmCheaper = IsoWarm.TranslateCycles * 2 < IsoCold.TranslateCycles &&
                       ShWarm.TranslateCycles <= ShCold.TranslateCycles &&
                       IsoWarm.GeoMean < IsoCold.GeoMean;
    bool ModesDiffer = ShWarm.Reclaims > 0 && IsoWarm.Reclaims == 0 &&
                       IsoCold.Reclaims == 0 && ShCold.Reclaims == 0;
    std::printf("%s: warm-start cheaper than cold: %s (xlate %llu -> %llu "
                "under isolation)\n",
                M.Label, WarmCheaper ? "YES" : "NO",
                static_cast<unsigned long long>(IsoCold.TranslateCycles),
                static_cast<unsigned long long>(IsoWarm.TranslateCycles));
    std::printf("%s: arbiter modes diverge: %s (shared-warm reclaims %llu, "
                "isolation always 0)\n",
                M.Label, ModesDiffer ? "YES" : "NO",
                static_cast<unsigned long long>(ShWarm.Reclaims));
    Ok = Ok && WarmCheaper && ModesDiffer;
  }
  return Ok ? 0 : 1;
}
