//===- bench/abl_linking_and_cache.cpp - Ablation: linking/cache ---*- C++ -*-===//
//
// Part of StrataIB.
//
// Ablation: the non-IB machinery the paper takes as given. Fragment
// linking (direct-branch chaining) is what reduces SDT overhead to "just
// the IBs"; an undersized fragment cache forces flushes that re-pay
// translation. Both knobs bound how much the IB mechanisms matter.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("A3 (Ablation: linking & fragment-cache size)",
              "direct-branch chaining and code-cache capacity, x86 model",
              Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  struct Config {
    const char *Name;
    bool Link;
    uint32_t CacheBytes;
  };
  const Config Configs[] = {
      {"nolink, 8MB", false, 8 << 20},
      {"link, 8KB", true, 8 << 10},
      {"link, 32KB", true, 32 << 10},
      {"link, 8MB", true, 8 << 20},
  };

  TableFormatter T({"config", "geomean-12", "gcc", "gcc-dispatch%",
                    "bigcode", "bigcode-flushes", "bigcode-translate%"});

  ParallelRunner Runner(Ctx, "abl_linking_and_cache");
  struct Row {
    std::vector<size_t> Ids;
    size_t BigId = 0;
  };
  std::vector<Row> Rows;
  for (const Config &C : Configs) {
    core::SdtOptions Opts;
    Opts.Mechanism = core::IBMechanism::Ibtc;
    Opts.LinkFragments = C.Link;
    Opts.FragmentCacheBytes = C.CacheBytes;

    Row R;
    for (const std::string &W : BenchContext::allWorkloadNames())
      R.Ids.push_back(Runner.enqueue(W, Model, Opts));
    // The code-footprint stressor: hundreds of functions whose translated
    // working set exceeds the small cache configurations.
    R.BigId = Runner.enqueue("bigcode", Model, Opts);
    Rows.push_back(std::move(R));
  }
  Runner.runAll();

  std::vector<std::string> Names = BenchContext::allWorkloadNames();
  size_t Next = 0;
  for (const Config &C : Configs) {
    const Row &Cells = Rows[Next++];
    std::vector<Measurement> All;
    Measurement Gcc;
    for (size_t I = 0; I != Cells.Ids.size(); ++I) {
      const Measurement &M = Runner.result(Cells.Ids[I]);
      All.push_back(M);
      if (Names[I] == "gcc")
        Gcc = M;
    }
    const Measurement &Big = Runner.result(Cells.BigId);
    T.beginRow()
        .addCell(std::string(C.Name))
        .addCell(geoMeanSlowdown(All), 3)
        .addCell(Gcc.slowdown(), 3)
        .addCell(100.0 * Gcc.categoryShare(arch::CycleCategory::Dispatch),
                 1)
        .addCell(Big.slowdown(), 3)
        .addCell(Big.Stats.Flushes)
        .addCell(100.0 * Big.categoryShare(arch::CycleCategory::Translate),
                 1);
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: without linking every direct branch "
              "re-enters the dispatcher\n(overhead explodes); an 8KB "
              "cache thrashes bigcode's working set (flushes\nre-pay "
              "translation every pass); from 32KB up the working set "
              "fits and IB\nhandling is the only residual.\n");
  return 0;
}
