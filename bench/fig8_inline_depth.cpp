//===- bench/fig8_inline_depth.cpp - E8: inline-cache depth --------*- C++ -*-===//
//
// Part of StrataIB.
//
// Reproduces the inline-cache depth sweep: 0..4 inlined
// compare-and-jump predictions per IB site, over an IBTC backing.
// Monomorphic sites should resolve in the first compare; megamorphic
// interpreter dispatch burns the compares and gains nothing.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E8 (Fig: inline-cache depth)",
              "0..4 inlined predictions over an IBTC, x86 model", Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  const unsigned Depths[] = {0, 1, 2, 3, 4};
  std::vector<std::string> Headers = {"benchmark"};
  for (unsigned D : Depths)
    Headers.push_back("depth-" + std::to_string(D));
  TableFormatter T(Headers);

  ParallelRunner Runner(Ctx, "fig8_inline_depth");
  std::vector<std::vector<size_t>> Ids;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    std::vector<size_t> Row;
    for (size_t I = 0; I != std::size(Depths); ++I) {
      core::SdtOptions Opts;
      Opts.Mechanism = core::IBMechanism::Ibtc;
      Opts.InlineCacheDepth = Depths[I];
      Row.push_back(Runner.enqueue(W, Model, Opts));
    }
    Ids.push_back(std::move(Row));
  }
  Runner.runAll();

  std::vector<std::vector<Measurement>> ByDepth(std::size(Depths));
  size_t Next = 0;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    T.beginRow().addCell(W);
    const std::vector<size_t> &Row = Ids[Next++];
    for (size_t I = 0; I != std::size(Depths); ++I) {
      const Measurement &M = Runner.result(Row[I]);
      ByDepth[I].push_back(M);
      T.addCell(M.slowdown(), 3);
    }
  }
  T.beginRow().addCell(std::string("geo-mean"));
  for (const auto &Ms : ByDepth)
    T.addCell(geoMeanSlowdown(Ms), 3);

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: depth 1-2 helps low-fan-out sites (eon, "
              "vpr, vortex calls);\nthe megamorphic interpreters "
              "(perlbmk) plateau or regress as failed inline\ncompares "
              "stack up in front of the IBTC probe.\n");
  return 0;
}
