//===- bench/e14_cache_pressure.cpp - Cache capacity x policy x IB -*- C++ -*-===//
//
// Part of StrataIB.
//
// E14: indirect-branch mechanism cost under code-cache pressure. Sweeps
// fragment-cache capacity x eviction policy x IB mechanism and reports
// slowdown plus retranslation rate. The unbounded row is the no-pressure
// baseline; the bounded rows show what each mechanism pays when its
// pointers into the cache keep dying — the dispatcher caches nothing and
// degrades least, while sieve/inline caches add invalidation work on top
// of the retranslation cost every other mechanism shares.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

namespace {

struct MechConfig {
  const char *Name;
  core::IBMechanism Mechanism;
  unsigned InlineDepth;
};

struct RowConfig {
  const char *Name;
  uint32_t CacheBytes;
  cachemgr::CachePolicyKind Policy;
};

core::SdtOptions makeOpts(const RowConfig &R, const MechConfig &M) {
  core::SdtOptions Opts;
  Opts.Mechanism = M.Mechanism;
  Opts.InlineCacheDepth = M.InlineDepth;
  Opts.FragmentCacheBytes = R.CacheBytes;
  Opts.CachePolicy = R.Policy;
  return Opts;
}

} // namespace

int main() {
  uint32_t Scale = scaleFromEnv(10);
  printHeader("E14 (Cache pressure: capacity x policy x IB mechanism)",
              "bounded code cache with pluggable eviction, x86 model",
              Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  // Code-footprint-heavy workloads: bigcode is the sequential-thrash
  // stressor, hotcold is the hot-kernel-under-pressure stressor, and
  // gcc/perlbmk are the suite's largest translated working sets.
  const std::vector<std::string> Workloads = {"bigcode", "hotcold", "gcc",
                                              "perlbmk"};

  const MechConfig Mechs[] = {
      {"dispatcher", core::IBMechanism::Dispatcher, 0},
      {"ibtc", core::IBMechanism::Ibtc, 0},
      {"sieve", core::IBMechanism::Sieve, 0},
      {"inline2+ibtc", core::IBMechanism::Ibtc, 2},
  };
  using cachemgr::CachePolicyKind;
  const RowConfig Rows[] = {
      {"8MB, full-flush", 8 << 20, CachePolicyKind::FullFlush},
      {"64KB, full-flush", 64 << 10, CachePolicyKind::FullFlush},
      {"64KB, fifo", 64 << 10, CachePolicyKind::Fifo},
      {"64KB, generational", 64 << 10, CachePolicyKind::Generational},
      {"16KB, full-flush", 16 << 10, CachePolicyKind::FullFlush},
      {"16KB, fifo", 16 << 10, CachePolicyKind::Fifo},
      {"16KB, generational", 16 << 10, CachePolicyKind::Generational},
  };

  ParallelRunner Runner(Ctx, "e14_cache_pressure");
  // Ids[row][mech][workload].
  std::vector<std::vector<std::vector<size_t>>> Ids;
  for (const RowConfig &R : Rows) {
    std::vector<std::vector<size_t>> PerMech;
    for (const MechConfig &M : Mechs) {
      std::vector<size_t> PerWorkload;
      for (const std::string &W : Workloads)
        PerWorkload.push_back(Runner.enqueue(W, Model, makeOpts(R, M)));
      PerMech.push_back(std::move(PerWorkload));
    }
    Ids.push_back(std::move(PerMech));
  }
  Runner.runAll();

  // Table 1: slowdown (geomean over the workloads) per capacity/policy
  // row and mechanism.
  {
    std::vector<std::string> Header{"cache, policy"};
    for (const MechConfig &M : Mechs)
      Header.push_back(M.Name);
    TableFormatter T(Header);
    for (size_t R = 0; R != std::size(Rows); ++R) {
      T.beginRow().addCell(std::string(Rows[R].Name));
      for (size_t M = 0; M != std::size(Mechs); ++M) {
        std::vector<Measurement> Ms;
        for (size_t W = 0; W != Workloads.size(); ++W)
          Ms.push_back(Runner.result(Ids[R][M][W]));
        T.addCell(geoMeanSlowdown(Ms), 3);
      }
    }
    std::printf(
        "Slowdown vs native (geomean of bigcode/hotcold/gcc/perlbmk):\n%s\n",
        T.render().c_str());
  }

  // Table 2: policy thrash behaviour at 16KB under ibtc — retranslation
  // rate (retranslations / fragments translated) per workload, plus the
  // flush/eviction counts behind it.
  {
    TableFormatter T({"policy @16KB, ibtc", "workload", "flushes",
                      "partial-evicts", "evicted-KB", "retrans-rate",
                      "links-unlinked"});
    const size_t Ibtc = 1; // Mechs[1].
    for (size_t R = 4; R != std::size(Rows); ++R) { // The 16KB rows.
      for (size_t W = 0; W != Workloads.size(); ++W) {
        const Measurement &M = Runner.result(Ids[R][Ibtc][W]);
        double Rate =
            M.Stats.FragmentsTranslated == 0
                ? 0.0
                : static_cast<double>(M.Stats.RetranslationsAfterEviction) /
                      static_cast<double>(M.Stats.FragmentsTranslated);
        T.beginRow()
            .addCell(std::string(Rows[R].Name))
            .addCell(Workloads[W])
            .addCell(M.Stats.Flushes)
            .addCell(M.Stats.PartialEvictions)
            .addCell(static_cast<double>(M.Stats.EvictedBytes) / 1024.0, 1)
            .addCell(Rate, 3)
            .addCell(M.Stats.LinksUnlinked);
      }
    }
    std::printf("%s\n", T.render().c_str());
  }

  std::printf(
      "Shape targets: the dispatcher degrades least under pressure (it\n"
      "caches no fragment pointers, so eviction costs it nothing beyond\n"
      "retranslation); sieve and inline caches pay the largest\n"
      "invalidation cost (code-resident stubs / patched compare slots\n"
      "must be unchained); generational beats full-flush on retranslation\n"
      "rate for hot-loop workloads (the hot generation survives every\n"
      "collection).\n");
  return 0;
}
