//===- bench/abl_hash_functions.cpp - Ablation: hash choice --------*- C++ -*-===//
//
// Part of StrataIB.
//
// Ablation: the hash that indexes IB lookup structures. Cheap hashes
// (shift-mask) cost fewer inline ops but spread word-aligned,
// regularly-spaced code addresses worse than xor-folding or
// multiplicative hashing — a tradeoff that only shows under capacity
// pressure.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/Hashing.h"
#include "support/TableFormatter.h"

#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("A2 (Ablation: hash function)",
              "IBTC index hash at small and large capacity, x86 model",
              Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  TableFormatter T({"entries", "hash", "geomean-12", "hit%perlbmk",
                    "hit%gcc"});

  ParallelRunner Runner(Ctx, "abl_hash_functions");
  struct Row {
    uint32_t Entries;
    HashKind Kind;
    std::vector<size_t> Ids;
  };
  std::vector<Row> Rows;
  for (uint32_t Entries : {64u, 256u, 4096u}) {
    for (HashKind Kind :
         {HashKind::ShiftMask, HashKind::XorFold, HashKind::Fibonacci}) {
      core::SdtOptions Opts;
      Opts.Mechanism = core::IBMechanism::Ibtc;
      Opts.IbtcEntries = Entries;
      Opts.IbtcHash = Kind;

      Row R;
      R.Entries = Entries;
      R.Kind = Kind;
      for (const std::string &W : BenchContext::allWorkloadNames())
        R.Ids.push_back(Runner.enqueue(W, Model, Opts));
      Rows.push_back(std::move(R));
    }
  }
  Runner.runAll();

  std::vector<std::string> Names = BenchContext::allWorkloadNames();
  for (const Row &R : Rows) {
    std::vector<Measurement> All;
    Measurement Perl, Gcc;
    for (size_t I = 0; I != R.Ids.size(); ++I) {
      const Measurement &M = Runner.result(R.Ids[I]);
      All.push_back(M);
      if (Names[I] == "perlbmk")
        Perl = M;
      if (Names[I] == "gcc")
        Gcc = M;
    }
    T.beginRow()
        .addCell(static_cast<uint64_t>(R.Entries))
        .addCell(hashKindName(R.Kind))
        .addCell(geoMeanSlowdown(All), 3)
        .addCell(100.0 * Perl.mainHitRate(), 2)
        .addCell(100.0 * Gcc.mainHitRate(), 2);
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: hash quality matters at 64-256 entries "
              "(better spread = higher\nhit rate) and washes out at 4096 "
              "where any hash avoids conflicts; the\nmultiplicative hash "
              "pays its multiply once per lookup.\n");
  return 0;
}
