//===- bench/BenchHarness.h - Shared experiment harness ----------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the experiment binaries (one binary per paper table
/// or figure): workload/program caching, native-baseline caching,
/// measurement under a given machine model + SDT configuration, and
/// uniform headers. The scale of every experiment can be adjusted with
/// the STRATAIB_SCALE environment variable.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_BENCH_BENCHHARNESS_H
#define STRATAIB_BENCH_BENCHHARNESS_H

#include "arch/MachineModel.h"
#include "arch/Timing.h"
#include "core/SdtEngine.h"
#include "core/SdtOptions.h"
#include "isa/Program.h"
#include "trace/TraceExport.h"
#include "vm/RunResult.h"

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace sdt {
namespace bench {

/// One native-vs-translated measurement.
struct Measurement {
  uint64_t NativeCycles = 0;
  uint64_t SdtCycles = 0;
  /// Cycles by category from the translated run.
  std::array<uint64_t, size_t(arch::CycleCategory::NumCategories)>
      SdtByCategory{};
  core::SdtStats Stats;
  vm::CtiStats NativeCti;
  uint64_t Instructions = 0;
  bool Transparent = false; ///< Outputs/checksums/instr counts matched.
  /// Main-mechanism structure lookups/hits (IBTC table or sieve).
  uint64_t MainLookups = 0;
  uint64_t MainHits = 0;
  /// Host indirect-predictor behaviour during the translated run: how
  /// many indirect transfers the emitted code issued and how many the
  /// modeled predictor missed (the E17 axis).
  uint64_t SdtIndirectLookups = 0;
  uint64_t SdtIndirectMispredicts = 0;
  uint64_t SdtReturnLookups = 0;
  uint64_t SdtReturnMispredicts = 0;
  /// Instrumentation plugins attached to the translated run ("" when
  /// none) and their end-of-run metrics, keys "<plugin>.<metric>".
  std::string PluginSpec;
  std::vector<std::pair<std::string, uint64_t>> PluginMetrics;
  /// Simulator wall-clock of the translated run() call alone (no
  /// assembly, no native baseline) and the engine that executed it —
  /// "plan" or "switch", after engine-level deoptimization, so it names
  /// what actually ran. Wall-clock is host noise by definition: these
  /// two fields and the derived rate are the only summary fields allowed
  /// to differ between repeat runs (scripts/check_perf.py --wall).
  double SimWallMs = 0.0;
  std::string Engine;

  /// Simulator throughput: guest instructions retired per wall-clock
  /// second of run().
  double guestInstrsPerSec() const {
    return SimWallMs <= 0.0 ? 0.0
                            : static_cast<double>(Instructions) /
                                  (SimWallMs / 1000.0);
  }

  double mainHitRate() const {
    return MainLookups == 0 ? 0.0
                            : static_cast<double>(MainHits) /
                                  static_cast<double>(MainLookups);
  }

  /// Mispredict rate over the translated run's indirect transfers
  /// (indirect jumps and return-shaped jumps combined).
  double ibMispredictRate() const {
    uint64_t Lookups = SdtIndirectLookups + SdtReturnLookups;
    return Lookups == 0 ? 0.0
                        : static_cast<double>(SdtIndirectMispredicts +
                                              SdtReturnMispredicts) /
                              static_cast<double>(Lookups);
  }

  double slowdown() const {
    return NativeCycles == 0
               ? 0.0
               : static_cast<double>(SdtCycles) /
                     static_cast<double>(NativeCycles);
  }
  double categoryShare(arch::CycleCategory C) const {
    return SdtCycles == 0 ? 0.0
                          : static_cast<double>(
                                SdtByCategory[static_cast<size_t>(C)]) /
                                static_cast<double>(SdtCycles);
  }
};

/// Caches assembled workloads and native baselines across configurations
/// within one experiment binary.
///
/// Thread-safety contract: measure() and runNative() may be called
/// concurrently from ParallelRunner workers. The workload and baseline
/// memo maps are slot-per-key with std::call_once construction, so the
/// first caller builds a given program (or native baseline) while
/// concurrent callers of the *same* key block and callers of other keys
/// proceed; after construction the cached objects are only ever read.
/// Everything downstream of the memos (TimingModel, SdtEngine, GuestVM)
/// is built per measure() call and never shared across threads.
class BenchContext {
public:
  explicit BenchContext(uint32_t Scale);

  uint32_t scale() const { return Scale; }

  /// The twelve SPEC INT proxy names, in suite order.
  static std::vector<std::string> allWorkloadNames();

  /// Runs \p Workload natively and under (\p Model, \p Opts) — with the
  /// STRATAIB_CACHE_BYTES/STRATAIB_CACHE_POLICY and STRATAIB_PREDICTOR/
  /// STRATAIB_BTB_ENTRIES env overrides applied. Native results are
  /// cached per (workload, model) pair; predictor overrides rename the
  /// model so overridden and unoverridden cells never share a baseline.
  /// \p PluginSpec names instrumentation plugins to attach for the
  /// translated run (comma-separated, see src/plugin); STRATAIB_PLUGINS
  /// overrides it when set. Aborts the process on build/run errors
  /// (experiment binaries are tools).
  Measurement measure(const std::string &Workload,
                      const arch::MachineModel &Model,
                      const core::SdtOptions &RequestedOpts,
                      const std::string &PluginSpec = "");

  /// Native-only run (IB statistics, instruction counts).
  vm::RunResult runNative(const std::string &Workload,
                          bool CollectSiteTargets = false);

private:
  struct NativeBaseline {
    uint64_t Cycles = 0;
    vm::RunResult Result;
  };

  /// A memo slot: built exactly once under its own flag. Slots live in
  /// std::map, whose nodes never move, so references handed out stay
  /// valid while new keys are inserted.
  template <typename T> struct Slot {
    std::once_flag Once;
    std::optional<T> Value;
  };

  const isa::Program &program(const std::string &Workload);
  const NativeBaseline &native(const std::string &Workload,
                               const arch::MachineModel &Model);

  uint32_t Scale;
  std::mutex SlotsMutex; ///< Guards map insertion only, not slot fill.
  std::map<std::string, Slot<isa::Program>> Programs;
  std::map<std::string, Slot<NativeBaseline>> Natives; ///< workload|model.
};

/// Strict parser for numeric STRATAIB_* knobs: returns \p Fallback when
/// \p Name is unset or empty, else the parsed value. Anything
/// non-numeric, trailing garbage, or outside [\p Min, \p Max] is a
/// configuration error — diagnostic to stderr and exit(2), matching
/// STRATAIB_CACHE_POLICY's behaviour. A typo'd knob silently falling
/// back would run the wrong experiment.
long envNumberOr(const char *Name, long Fallback, long Min, long Max);

/// Reads STRATAIB_SCALE, falling back to \p Fallback.
uint32_t scaleFromEnv(uint32_t Fallback);

/// Applies the cache-management env overrides to \p Opts:
/// STRATAIB_CACHE_BYTES (fragment-cache capacity, >= 4096) and
/// STRATAIB_CACHE_POLICY (full-flush / fifo / generational). measure()
/// and the JSON summary both use the overridden options, so every
/// experiment can be re-run under a different policy without code
/// changes — note this overrides cells that sweep these knobs
/// themselves (e.g. e14_cache_pressure). Exits on an unknown policy
/// name or an out-of-range/non-numeric byte count.
core::SdtOptions withCacheEnvOverrides(core::SdtOptions Opts);

/// Applies the indirect-predictor env overrides to \p Model:
/// STRATAIB_PREDICTOR (none / btb / ibtb / perfect) and
/// STRATAIB_BTB_ENTRIES (power-of-two indirect-target entry count, all
/// kinds). When either is set the model is renamed via withPredictor()
/// so memoised native baselines cannot collide with the unoverridden
/// configuration. Exits with status 2 on an unknown kind name or a
/// non-numeric / non-power-of-two entry count.
arch::MachineModel withPredictorEnvOverrides(arch::MachineModel Model);

/// Applies the execution-engine env override to \p Opts: STRATAIB_EXEC
/// (plan / switch) selects which simulator loop runs translated
/// fragments. Both engines are observably bit-identical on modeled
/// cycles, cache states, and stats (docs/ExecutionEngine.md); the knob
/// exists for throughput comparisons (bench/e20_sim_throughput) and as a
/// fallback. When set it overrides cells that sweep the engine
/// themselves. Exits with status 2 on any other value.
core::SdtOptions withExecEngineEnvOverride(core::SdtOptions Opts);

/// Resolves the effective plugin spec for one cell: STRATAIB_PLUGINS
/// when set and non-empty (it overrides cells that choose plugins
/// themselves, e.g. e19_instrumentation's sweep; "none" forces plugins
/// off), else \p CellSpec. The result is validated against the in-tree
/// plugin registry; an unknown or duplicate name exits with status 2,
/// matching the other strict STRATAIB_* knobs.
std::string pluginSpecFromEnv(const std::string &CellSpec);

/// Reads STRATAIB_TRACE: the path prefix for per-cell trace files, or ""
/// when tracing is off. When set, measure() attaches a TraceSink to each
/// engine run and writes <base>.jsonl and <base>.chrome.json next to the
/// prefix (see traceFileBase); the ring capacity comes from
/// STRATAIB_TRACE_EVENTS (default trace::TraceSink::DefaultCapacity).
std::string tracePrefixFromEnv();

/// Filename base (no extension) for one traced cell:
/// "<prefix>_<workload>_<model>_<sanitised options>".
std::string traceFileBase(const std::string &Prefix,
                          const std::string &Workload,
                          const std::string &ModelName,
                          const core::SdtOptions &Opts);

/// Builds the reconciliation expectations for a finished engine run
/// (SdtStats counters plus per-mechanism lookup totals, wrappers'
/// backing mechanisms included, merged by mechanism name).
trace::StatsExpectation traceExpectations(core::SdtEngine &Engine);

/// Prints the uniform experiment banner.
void printHeader(const std::string &ExperimentId, const std::string &Title,
                 uint32_t Scale);

/// Geometric mean over slowdowns.
double geoMeanSlowdown(const std::vector<Measurement> &Ms);

} // namespace bench
} // namespace sdt

#endif // STRATAIB_BENCH_BENCHHARNESS_H
