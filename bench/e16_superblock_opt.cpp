//===- bench/e16_superblock_opt.cpp - E16: superblock optimizer --*- C++ -*-===//
//
// Part of StrataIB.
//
// E16: the superblock optimizer and speculative IB-target inlining on
// top of NET-style traces. Sweeps mechanism × speculation threshold on
// the fig2 workload set (x86 model, traces enabled throughout):
//
//   traces   — trace formation alone (the A4/fig-baseline config)
//   opt      — + redundancy-elimination passes over stitched traces
//   spec@N   — + monomorphic IB targets inlined behind guards, where a
//              site qualifies after N consecutive same-target hits
//
// The question: how far below the traced baseline can redundancy
// elimination plus guarded inlining push the geo-mean slowdown, and
// where does speculation pay (monomorphic ind-call/return code) versus
// tread water (megamorphic interpreter dispatch)?
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <array>
#include <cstdio>
#include <vector>

using namespace sdt;
using namespace sdt::bench;

namespace {

struct Variant {
  const char *Name;
  bool Optimize;
  bool Speculate;
  uint32_t Threshold;
};

constexpr std::array<Variant, 5> Variants = {{
    {"traces", false, false, 0},
    {"opt", true, false, 0},
    {"spec@4", true, true, 4},
    {"spec@16", true, true, 16},
    {"spec@64", true, true, 64},
}};

core::SdtOptions makeOpts(core::IBMechanism Mech, const Variant &V) {
  core::SdtOptions O;
  O.Mechanism = Mech;
  O.EnableTraces = true;
  O.TraceHotThreshold = 50;
  O.OptimizeTraces = V.Optimize;
  O.TraceSpeculate = V.Speculate;
  if (V.Speculate)
    O.TraceSpeculateThreshold = V.Threshold;
  return O;
}

} // namespace

int main() {
  uint32_t Scale = scaleFromEnv(10);
  printHeader("E16 (Superblock optimizer)",
              "redundancy elimination + speculative IB inlining over "
              "traces, x86 model",
              Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  const std::array<core::IBMechanism, 2> Mechs = {
      core::IBMechanism::Ibtc, core::IBMechanism::Sieve};
  const std::array<const char *, 2> MechNames = {"ibtc", "sieve"};

  ParallelRunner Runner(Ctx, "e16_superblock_opt");
  // Ids[mech][workload][variant]
  std::vector<std::vector<std::array<size_t, Variants.size()>>> Ids(
      Mechs.size());
  for (size_t MI = 0; MI != Mechs.size(); ++MI)
    for (const std::string &W : BenchContext::allWorkloadNames()) {
      std::array<size_t, Variants.size()> Row;
      for (size_t VI = 0; VI != Variants.size(); ++VI)
        Row[VI] = Runner.enqueue(W, Model, makeOpts(Mechs[MI], Variants[VI]));
      Ids[MI].push_back(Row);
    }
  Runner.runAll();

  double BestGeo = 0.0, BaseGeo = 0.0;
  const char *BestLabel = "";
  for (size_t MI = 0; MI != Mechs.size(); ++MI) {
    std::printf("--- mechanism: %s ---\n", MechNames[MI]);
    TableFormatter T({"benchmark", "traces", "opt", "spec@4", "spec@16",
                      "spec@64", "hit%@16", "elim/trace"});
    std::array<std::vector<Measurement>, Variants.size()> All;
    size_t Next = 0;
    for (const std::string &W : BenchContext::allWorkloadNames()) {
      const std::array<size_t, Variants.size()> &Row = Ids[MI][Next++];
      std::array<Measurement, Variants.size()> Ms;
      for (size_t VI = 0; VI != Variants.size(); ++VI) {
        Ms[VI] = Runner.result(Row[VI]);
        All[VI].push_back(Ms[VI]);
      }
      const core::SdtStats &Spec16 = Ms[3].Stats;
      double ElimPerTrace =
          Spec16.TracesBuilt
              ? static_cast<double>(Spec16.traceInstrsEliminated()) /
                    static_cast<double>(Spec16.TracesBuilt)
              : 0.0;
      T.beginRow()
          .addCell(W)
          .addCell(Ms[0].slowdown(), 3)
          .addCell(Ms[1].slowdown(), 3)
          .addCell(Ms[2].slowdown(), 3)
          .addCell(Ms[3].slowdown(), 3)
          .addCell(Ms[4].slowdown(), 3)
          .addCell(100.0 * Spec16.specGuardHitRate(), 1)
          .addCell(ElimPerTrace, 1);
    }
    TableFormatter &GeoRow = T.beginRow().addCell(std::string("geo-mean"));
    for (size_t VI = 0; VI != Variants.size(); ++VI)
      GeoRow.addCell(geoMeanSlowdown(All[VI]), 3);
    GeoRow.addCell(std::string("-")).addCell(std::string("-"));
    std::printf("%s\n", T.render().c_str());

    double Base = geoMeanSlowdown(All[0]);
    for (size_t VI = 1; VI != Variants.size(); ++VI) {
      double G = geoMeanSlowdown(All[VI]);
      if (BestLabel[0] == '\0' || G < BestGeo) {
        BestGeo = G;
        BaseGeo = Base;
        BestLabel = Variants[VI].Name;
      }
    }
  }

  std::printf("Best optimized geo-mean %.3fx (%s) vs traced baseline "
              "%.3fx: %.1f%% of the\nremaining overhead above native "
              "removed.\n\n",
              BestGeo, BestLabel,
              BaseGeo,
              BaseGeo > 1.0
                  ? 100.0 * (BaseGeo - BestGeo) / (BaseGeo - 1.0)
                  : 0.0);
  std::printf(
      "Shape targets: the redundancy passes help everywhere traces form "
      "(dead link\nstores on call-heavy code, outlined stubs tightening "
      "hot lines); speculation\nis the big lever on monomorphic sites — "
      "eon/vortex ind-calls and, via the\nguarded loop-close, "
      "parser/gap-style dispatch loops with a dominant state —\nwhile "
      "megamorphic perlbmk gains little beyond the passes and low "
      "thresholds\n(spec@4) risk guards on unstable sites. The passes "
      "alone are cycle-neutral\n(they never add retired work) but can "
      "shift icache layout either way; the\ngeo-mean win comes from "
      "speculation, and the best spec threshold beats the\ntraced "
      "baseline.\n");
  return 0;
}
