//===- bench/abl_traces.cpp - Ablation: trace formation ------------*- C++ -*-===//
//
// Part of StrataIB.
//
// Ablation: NET-style traces on top of basic-block fragments, and the
// superblock optimizer + speculative IB inlining on top of traces.
// Traces linearise hot paths (taken branches fall through, direct jumps
// vanish, calls inline) — but they end at indirect branches, so the
// *share* of overhead attributable to IB handling grows. This is the
// premise that makes the paper's question the right one: after linking
// and traces, IBs are what is left. The optimized column then shows how
// far redundancy elimination and guarded target inlining push into that
// residual (E16 sweeps this systematically).
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <array>
#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("A4 (Ablation: traces)",
              "bb fragments vs NET traces vs optimized superblocks, x86 "
              "model",
              Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  core::SdtOptions Bb;
  Bb.Mechanism = core::IBMechanism::Ibtc;

  core::SdtOptions Traced = Bb;
  Traced.EnableTraces = true;
  Traced.TraceHotThreshold = 50;

  core::SdtOptions Opt = Traced;
  Opt.OptimizeTraces = true;
  Opt.TraceSpeculate = true;

  TableFormatter T({"benchmark", "bb", "traces", "opt+spec", "traces-built",
                    "trace-len", "elim", "guard-hit%", "bb-ib%",
                    "traces-ib%", "opt-ib%"});
  std::vector<Measurement> BbAll, TracedAll, OptAll;

  ParallelRunner Runner(Ctx, "abl_traces");
  std::vector<std::array<size_t, 3>> Ids;
  for (const std::string &W : BenchContext::allWorkloadNames())
    Ids.push_back({Runner.enqueue(W, Model, Bb),
                   Runner.enqueue(W, Model, Traced),
                   Runner.enqueue(W, Model, Opt)});
  Runner.runAll();

  size_t Next = 0;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    const std::array<size_t, 3> &Cell = Ids[Next++];
    Measurement B = Runner.result(Cell[0]);
    Measurement R = Runner.result(Cell[1]);
    Measurement O = Runner.result(Cell[2]);
    BbAll.push_back(B);
    TracedAll.push_back(R);
    OptAll.push_back(O);
    double AvgLen = O.Stats.TracesBuilt
                        ? static_cast<double>(O.Stats.TraceGuestInstrs) /
                              static_cast<double>(O.Stats.TracesBuilt)
                        : 0.0;
    T.beginRow()
        .addCell(W)
        .addCell(B.slowdown(), 3)
        .addCell(R.slowdown(), 3)
        .addCell(O.slowdown(), 3)
        .addCell(O.Stats.TracesBuilt)
        .addCell(AvgLen, 1)
        .addCell(O.Stats.traceInstrsEliminated())
        .addCell(100.0 * O.Stats.specGuardHitRate(), 1)
        .addCell(100.0 * B.categoryShare(arch::CycleCategory::IBLookup), 1)
        .addCell(100.0 * R.categoryShare(arch::CycleCategory::IBLookup), 1)
        .addCell(100.0 * O.categoryShare(arch::CycleCategory::IBLookup),
                 1);
  }
  T.beginRow()
      .addCell(std::string("geo-mean"))
      .addCell(geoMeanSlowdown(BbAll), 3)
      .addCell(geoMeanSlowdown(TracedAll), 3)
      .addCell(geoMeanSlowdown(OptAll), 3)
      .addCell(std::string("-"))
      .addCell(std::string("-"))
      .addCell(std::string("-"))
      .addCell(std::string("-"))
      .addCell(std::string("-"))
      .addCell(std::string("-"))
      .addCell(std::string("-"));

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: traces shave the block-chaining overhead "
              "(jump elision,\nfall-through layout) — biggest on "
              "branch/jump-bound code (bzip2, gzip, gcc,\ncrafty) — while "
              "the absolute IB-lookup cycles are untouched: traces end "
              "at\nindirect branches, so IB handling remains the "
              "irreducible residual. The\nopt+spec column attacks that "
              "residual directly: monomorphic sites (eon,\nvortex, "
              "crafty's returns under as-indirect handling) collapse to a "
              "guarded\ncompare, so their guard-hit%% runs high and the "
              "IB share drops; megamorphic\nsites (perlbmk) stay on the "
              "fallback path and keep their residual.\n");
  return 0;
}
