//===- bench/fig10_cross_arch.cpp - E10: cross-architecture --------*- C++ -*-===//
//
// Part of StrataIB.
//
// Reproduces the cross-architecture comparison — the paper's headline
// claim: "the most efficient implementation and configuration can be
// highly dependent on the implementation of the underlying architecture."
// A fixed candidate set of configurations is evaluated on both machine
// models; the best configuration per benchmark is reported for each.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <array>
#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

namespace {

struct Candidate {
  const char *Name;
  core::SdtOptions Opts;
};

std::vector<Candidate> candidates() {
  std::vector<Candidate> Cs;
  auto add = [&Cs](const char *Name, auto Mutate) {
    core::SdtOptions O;
    O.Returns = core::ReturnStrategy::FastReturn;
    Mutate(O);
    Cs.push_back({Name, O});
  };
  add("ibtc-light", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Ibtc;
  });
  add("ibtc-full", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Ibtc;
    O.FullFlagSave = true;
  });
  add("sieve", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Sieve;
  });
  add("inline2+ibtc", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Ibtc;
    O.InlineCacheDepth = 2;
  });
  add("inline2+sieve", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Sieve;
    O.InlineCacheDepth = 2;
  });
  return Cs;
}

} // namespace

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E10 (Fig: cross-architecture)",
              "best configuration per benchmark, per machine model",
              Scale);
  BenchContext Ctx(Scale);
  std::vector<Candidate> Cs = candidates();

  TableFormatter T({"benchmark", "x86-best", "x86-slowdown", "sparc-best",
                    "sparc-slowdown", "same-config?"});
  unsigned Different = 0;

  ParallelRunner Runner(Ctx, "fig10_cross_arch");
  std::vector<std::vector<std::array<size_t, 2>>> Ids;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    std::vector<std::array<size_t, 2>> PerCandidate;
    for (const Candidate &C : Cs)
      PerCandidate.push_back(
          {Runner.enqueue(W, arch::x86Model(), C.Opts),
           Runner.enqueue(W, arch::sparcModel(), C.Opts)});
    Ids.push_back(std::move(PerCandidate));
  }
  Runner.runAll();

  size_t Next = 0;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    const std::vector<std::array<size_t, 2>> &PerCandidate = Ids[Next++];
    const Candidate *BestX86 = nullptr;
    const Candidate *BestSparc = nullptr;
    double BestX86Slow = 0, BestSparcSlow = 0;
    for (size_t CI = 0; CI != Cs.size(); ++CI) {
      const Candidate &C = Cs[CI];
      double SX = Runner.result(PerCandidate[CI][0]).slowdown();
      double SS = Runner.result(PerCandidate[CI][1]).slowdown();
      if (!BestX86 || SX < BestX86Slow) {
        BestX86 = &C;
        BestX86Slow = SX;
      }
      if (!BestSparc || SS < BestSparcSlow) {
        BestSparc = &C;
        BestSparcSlow = SS;
      }
    }
    bool Same = BestX86 == BestSparc;
    Different += !Same;
    T.beginRow()
        .addCell(W)
        .addCell(std::string(BestX86->Name))
        .addCell(BestX86Slow, 3)
        .addCell(std::string(BestSparc->Name))
        .addCell(BestSparcSlow, 3)
        .addCell(std::string(Same ? "yes" : "NO"));
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Benchmarks whose best configuration differs across "
              "machine models: %u/12.\n", Different);
  std::printf("Shape target: a nonzero count — the best mechanism/"
              "configuration is\narchitecture-dependent.\n");
  return 0;
}
