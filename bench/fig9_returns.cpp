//===- bench/fig9_returns.cpp - E9: return-handling strategies -----*- C++ -*-===//
//
// Part of StrataIB.
//
// Reproduces the return-handling figure: returns through the general
// IBTC, through a dedicated return cache, and as fast returns (translated
// addresses in the link register). Returns are the most frequent IB
// class, so this choice dominates the call-bound benchmarks.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "support/TableFormatter.h"

#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E9 (Fig: return handling)",
              "as-indirect vs return-cache vs fast returns, x86 model",
              Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  auto configFor = [](core::ReturnStrategy S) {
    core::SdtOptions O;
    O.Mechanism = core::IBMechanism::Ibtc;
    O.Returns = S;
    return O;
  };

  TableFormatter T({"benchmark", "ret/1k", "as-indirect", "return-cache",
                    "shadow-stack", "fast-return", "fastret-direct%"});
  std::vector<Measurement> AsInd, RetCache, ShadowStack, FastRet;

  for (const std::string &W : BenchContext::allWorkloadNames()) {
    Measurement A =
        Ctx.measure(W, Model, configFor(core::ReturnStrategy::AsIndirect));
    Measurement R =
        Ctx.measure(W, Model, configFor(core::ReturnStrategy::ReturnCache));
    Measurement S = Ctx.measure(
        W, Model, configFor(core::ReturnStrategy::ShadowStack));
    Measurement F =
        Ctx.measure(W, Model, configFor(core::ReturnStrategy::FastReturn));
    AsInd.push_back(A);
    RetCache.push_back(R);
    ShadowStack.push_back(S);
    FastRet.push_back(F);
    uint64_t RetExecs = F.Stats.IBExecs[size_t(core::IBClass::Return)];
    double DirectPct =
        RetExecs == 0 ? 0.0
                      : 100.0 * static_cast<double>(
                                    F.Stats.FastReturnDirect) /
                            static_cast<double>(RetExecs);
    T.beginRow()
        .addCell(W)
        .addCell(1000.0 * static_cast<double>(A.NativeCti.Returns) /
                     static_cast<double>(A.Instructions),
                 2)
        .addCell(A.slowdown(), 3)
        .addCell(R.slowdown(), 3)
        .addCell(S.slowdown(), 3)
        .addCell(F.slowdown(), 3)
        .addCell(DirectPct, 1);
  }
  T.beginRow()
      .addCell(std::string("geo-mean"))
      .addCell(std::string("-"))
      .addCell(geoMeanSlowdown(AsInd), 3)
      .addCell(geoMeanSlowdown(RetCache), 3)
      .addCell(geoMeanSlowdown(ShadowStack), 3)
      .addCell(geoMeanSlowdown(FastRet), 3)
      .addCell(std::string("-"));

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: gains track return density (crafty, gcc, "
              "vortex, eon); fast\nreturns win because the return "
              "executes as a bare predicted jump — recovering\nthe "
              "hardware return-address-stack behaviour native code "
              "enjoys. The shadow\nstack is transparent but pays per-call "
              "pushes and a memory-indirect jump,\nlanding between the "
              "return cache and fast returns.\n");
  return 0;
}
