//===- bench/fig9_returns.cpp - E9: return-handling strategies -----*- C++ -*-===//
//
// Part of StrataIB.
//
// Reproduces the return-handling figure: returns through the general
// IBTC, through a dedicated return cache, and as fast returns (translated
// addresses in the link register). Returns are the most frequent IB
// class, so this choice dominates the call-bound benchmarks.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <array>
#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E9 (Fig: return handling)",
              "as-indirect vs return-cache vs fast returns, x86 model",
              Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  auto configFor = [](core::ReturnStrategy S) {
    core::SdtOptions O;
    O.Mechanism = core::IBMechanism::Ibtc;
    O.Returns = S;
    return O;
  };

  TableFormatter T({"benchmark", "ret/1k", "as-indirect", "return-cache",
                    "shadow-stack", "fast-return", "fastret-direct%"});
  std::vector<Measurement> AsInd, RetCache, ShadowStack, FastRet;

  ParallelRunner Runner(Ctx, "fig9_returns");
  std::vector<std::array<size_t, 4>> Ids;
  for (const std::string &W : BenchContext::allWorkloadNames())
    Ids.push_back(
        {Runner.enqueue(W, Model,
                        configFor(core::ReturnStrategy::AsIndirect)),
         Runner.enqueue(W, Model,
                        configFor(core::ReturnStrategy::ReturnCache)),
         Runner.enqueue(W, Model,
                        configFor(core::ReturnStrategy::ShadowStack)),
         Runner.enqueue(W, Model,
                        configFor(core::ReturnStrategy::FastReturn))});
  Runner.runAll();

  size_t Next = 0;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    const std::array<size_t, 4> &Cell = Ids[Next++];
    Measurement A = Runner.result(Cell[0]);
    Measurement R = Runner.result(Cell[1]);
    Measurement S = Runner.result(Cell[2]);
    Measurement F = Runner.result(Cell[3]);
    AsInd.push_back(A);
    RetCache.push_back(R);
    ShadowStack.push_back(S);
    FastRet.push_back(F);
    uint64_t RetExecs = F.Stats.IBExecs[size_t(core::IBClass::Return)];
    double DirectPct =
        RetExecs == 0 ? 0.0
                      : 100.0 * static_cast<double>(
                                    F.Stats.FastReturnDirect) /
                            static_cast<double>(RetExecs);
    T.beginRow()
        .addCell(W)
        .addCell(1000.0 * static_cast<double>(A.NativeCti.Returns) /
                     static_cast<double>(A.Instructions),
                 2)
        .addCell(A.slowdown(), 3)
        .addCell(R.slowdown(), 3)
        .addCell(S.slowdown(), 3)
        .addCell(F.slowdown(), 3)
        .addCell(DirectPct, 1);
  }
  T.beginRow()
      .addCell(std::string("geo-mean"))
      .addCell(std::string("-"))
      .addCell(geoMeanSlowdown(AsInd), 3)
      .addCell(geoMeanSlowdown(RetCache), 3)
      .addCell(geoMeanSlowdown(ShadowStack), 3)
      .addCell(geoMeanSlowdown(FastRet), 3)
      .addCell(std::string("-"));

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: gains track return density (crafty, gcc, "
              "vortex, eon); fast\nreturns win because the return "
              "executes as a bare predicted jump — recovering\nthe "
              "hardware return-address-stack behaviour native code "
              "enjoys. The shadow\nstack is transparent but pays per-call "
              "pushes and a memory-indirect jump,\nlanding between the "
              "return cache and fast returns.\n");
  return 0;
}
