//===- bench/ParallelRunner.cpp --------------------------------*- C++ -*-===//
//
// Part of StrataIB. See ParallelRunner.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "ParallelRunner.h"

#include "support/Json.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>

using namespace sdt;
using namespace sdt::bench;

namespace {
double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}
} // namespace

unsigned ParallelRunner::jobsFromEnv() {
  // 0 (the fallback) means "use the hardware concurrency"; an explicit
  // STRATAIB_JOBS=0 asks for the same thing.
  long V = envNumberOr("STRATAIB_JOBS", 0, 0, 4096);
  if (V > 0)
    return static_cast<unsigned>(V);
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 0 ? HW : 1;
}

ParallelRunner::ParallelRunner(BenchContext &Ctx, std::string ExperimentId)
    : Ctx(Ctx), ExperimentId(std::move(ExperimentId)),
      Jobs(jobsFromEnv()) {}

size_t ParallelRunner::enqueue(const std::string &Workload,
                               const arch::MachineModel &Model,
                               const core::SdtOptions &Opts,
                               const std::string &PluginSpec) {
  assert(!Ran && "enqueue after runAll");
  Cell C;
  C.Kind = CellKind::Sdt;
  C.Workload = Workload;
  C.Model = Model;
  C.Opts = Opts;
  C.PluginSpec = PluginSpec;
  Cells.push_back(std::move(C));
  return Cells.size() - 1;
}

size_t ParallelRunner::enqueueNative(const std::string &Workload,
                                     bool CollectSiteTargets) {
  assert(!Ran && "enqueue after runAll");
  Cell C;
  C.Kind = CellKind::Native;
  C.Workload = Workload;
  C.CollectSiteTargets = CollectSiteTargets;
  Cells.push_back(std::move(C));
  return Cells.size() - 1;
}

void ParallelRunner::runCell(size_t Id) {
  Cell &C = Cells[Id];
  auto Start = std::chrono::steady_clock::now();
  if (C.Kind == CellKind::Sdt)
    C.M = Ctx.measure(C.Workload, C.Model, C.Opts, C.PluginSpec);
  else
    C.NativeResult = Ctx.runNative(C.Workload, C.CollectSiteTargets);
  C.WallMs = msSince(Start);
  C.Done = true;
}

void ParallelRunner::runAll() {
  assert(!Ran && "runAll called twice");
  auto Start = std::chrono::steady_clock::now();
  unsigned Workers = Jobs;
  if (Cells.size() < Workers)
    Workers = static_cast<unsigned>(Cells.size());

  if (Workers <= 1) {
    for (size_t I = 0; I != Cells.size(); ++I)
      runCell(I);
  } else {
    support::ThreadPool Pool(Workers);
    std::vector<std::future<void>> Futures;
    Futures.reserve(Cells.size());
    for (size_t I = 0; I != Cells.size(); ++I)
      Futures.push_back(Pool.submit([this, I] { runCell(I); }));
    // Collect in enqueue order; the first failing cell's exception
    // surfaces here deterministically.
    for (std::future<void> &F : Futures)
      F.get();
  }

  TotalWallMs = msSince(Start);
  Ran = true;

  if (const char *Env = std::getenv("STRATAIB_SUMMARY"))
    if (*Env)
      writeSummaryTo(Env);
}

const Measurement &ParallelRunner::result(size_t Id) const {
  assert(Id < Cells.size() && Cells[Id].Done && "result before runAll");
  assert(Cells[Id].Kind == CellKind::Sdt && "native cell has no Measurement");
  return Cells[Id].M;
}

const vm::RunResult &ParallelRunner::nativeResult(size_t Id) const {
  assert(Id < Cells.size() && Cells[Id].Done && "result before runAll");
  assert(Cells[Id].Kind == CellKind::Native && "not a native cell");
  return Cells[Id].NativeResult;
}

std::string ParallelRunner::summaryJson() const {
  support::JsonWriter W;
  W.beginObject();
  W.key("experiment").value(ExperimentId);
  W.key("scale").value(Ctx.scale());
  W.key("jobs").value(static_cast<uint64_t>(Jobs));
  W.key("wall_ms").value(TotalWallMs);
  // The engine the harness runs cells under by default (cells sweeping
  // the engine themselves record theirs in the per-cell "engine" key).
  W.key("exec_engine")
      .value(core::execEngineName(
          withExecEngineEnvOverride(core::SdtOptions()).Engine));
  W.key("cells").beginArray();
  for (const Cell &C : Cells) {
    W.beginObject();
    W.key("kind").value(C.Kind == CellKind::Sdt ? "sdt" : "native");
    W.key("workload").value(C.Workload);
    W.key("wall_ms").value(C.WallMs);
    if (C.Kind == CellKind::Sdt) {
      // The summary must describe what actually ran, so the env
      // overrides measure() applied are re-applied here.
      core::SdtOptions Effective = withCacheEnvOverrides(C.Opts);
      arch::MachineModel EffModel = withPredictorEnvOverrides(C.Model);
      W.key("model").value(EffModel.Name);
      // Instrumented cells get a distinct config key: scripts keyed on
      // "config" (check_perf.py) must never mix an instrumented cell's
      // slowdown with the uninstrumented baseline of the same options.
      std::string Config = Effective.describe();
      if (!C.M.PluginSpec.empty())
        Config += " plugins(" + C.M.PluginSpec + ")";
      W.key("config").value(Config);
      W.key("plugins").value(C.M.PluginSpec);
      // What actually executed the run (post engine-level deopt), plus
      // host wall-clock of the run() call. These and the derived rate
      // are the only per-cell fields that may legitimately vary between
      // repeat runs; modeled cycles and stats below must not.
      W.key("engine").value(C.M.Engine);
      W.key("sim_wall_ms").value(C.M.SimWallMs);
      W.key("guest_instrs_per_sec").value(C.M.guestInstrsPerSec());
      W.key("predictor").value(EffModel.Predictor.describe());
      W.key("cache_policy")
          .value(cachemgr::cachePolicyName(Effective.CachePolicy));
      W.key("cache_bytes").value(Effective.FragmentCacheBytes);
      W.key("native_cycles").value(C.M.NativeCycles);
      W.key("sdt_cycles").value(C.M.SdtCycles);
      W.key("slowdown").value(C.M.slowdown());
      W.key("main_lookups").value(C.M.MainLookups);
      W.key("main_hits").value(C.M.MainHits);
      W.key("main_hit_rate").value(C.M.mainHitRate());
      W.key("ib_lookups")
          .value(C.M.SdtIndirectLookups + C.M.SdtReturnLookups);
      W.key("ib_mispredicts")
          .value(C.M.SdtIndirectMispredicts + C.M.SdtReturnMispredicts);
      W.key("ib_mispredict_rate").value(C.M.ibMispredictRate());
      W.key("return_lookups").value(C.M.SdtReturnLookups);
      W.key("return_mispredicts").value(C.M.SdtReturnMispredicts);
      W.key("instructions").value(C.M.Instructions);
      W.key("transparent").value(C.M.Transparent);
      W.key("flushes").value(C.M.Stats.Flushes);
      W.key("partial_evictions").value(C.M.Stats.PartialEvictions);
      W.key("evicted_bytes").value(C.M.Stats.EvictedBytes);
      W.key("retranslations_after_eviction")
          .value(C.M.Stats.RetranslationsAfterEviction);
      W.key("links_unlinked").value(C.M.Stats.LinksUnlinked);
      W.key("code_write_invalidations")
          .value(C.M.Stats.CodeWriteInvalidations);
      W.key("fragments_invalidated_by_write")
          .value(C.M.Stats.FragmentsInvalidatedByWrite);
      W.key("stale_bytes_discarded").value(C.M.Stats.StaleBytesDiscarded);
      W.key("traces_built").value(C.M.Stats.TracesBuilt);
      W.key("traces_optimized").value(C.M.Stats.TracesOptimized);
      W.key("trace_instrs_eliminated")
          .value(C.M.Stats.traceInstrsEliminated());
      W.key("spec_guards_emitted").value(C.M.Stats.SpecGuardsEmitted);
      W.key("spec_guard_hits").value(C.M.Stats.SpecGuardHits);
      W.key("spec_guard_misses").value(C.M.Stats.SpecGuardMisses);
      W.key("spec_guard_hit_rate").value(C.M.Stats.specGuardHitRate());
      W.key("cycles_by_category").beginObject();
      for (size_t I = 0; I != C.M.SdtByCategory.size(); ++I)
        W.key(arch::cycleCategoryName(static_cast<arch::CycleCategory>(I)))
            .value(C.M.SdtByCategory[I]);
      W.endObject();
      if (!C.M.PluginMetrics.empty()) {
        W.key("plugin_metrics").beginObject();
        for (const auto &KV : C.M.PluginMetrics)
          W.key(KV.first).value(KV.second);
        W.endObject();
      }
    } else {
      W.key("instructions").value(C.NativeResult.InstructionCount);
    }
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}

void ParallelRunner::writeSummaryTo(const std::string &Path) const {
  std::string Doc = summaryJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "bench: cannot write summary to %s\n",
                 Path.c_str());
    return;
  }
  std::fwrite(Doc.data(), 1, Doc.size(), F);
  std::fputc('\n', F);
  std::fclose(F);
}
