//===- bench/abl_mechanism_mix.cpp - Ablation: per-class choice ----*- C++ -*-===//
//
// Part of StrataIB.
//
// Ablation: choosing the mechanism per IB class instead of uniformly.
// Jump-table dispatch, function-pointer calls, and returns have different
// target statistics; a mixed configuration can in principle beat either
// uniform one.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <array>
#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("A7 (Ablation: per-class mechanism mix)",
              "uniform vs mixed jump/call mechanisms, fast returns",
              Scale);
  BenchContext Ctx(Scale);

  struct Config {
    const char *Name;
    core::SdtOptions Opts;
  };
  std::vector<Config> Configs;
  auto add = [&Configs](const char *Name, auto Mutate) {
    core::SdtOptions O;
    O.Returns = core::ReturnStrategy::FastReturn;
    Mutate(O);
    Configs.push_back({Name, O});
  };
  add("uniform ibtc", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Ibtc;
  });
  add("uniform sieve", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Sieve;
  });
  add("sieve jumps + ibtc calls", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Ibtc;
    O.JumpMechanism = core::IBMechanism::Sieve;
  });
  add("ibtc jumps + sieve calls", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Sieve;
    O.JumpMechanism = core::IBMechanism::Ibtc;
  });

  TableFormatter T({"configuration", "x86-geomean", "sparc-geomean",
                    "x86-perlbmk", "x86-eon"});
  ParallelRunner Runner(Ctx, "abl_mechanism_mix");
  std::vector<std::vector<std::array<size_t, 2>>> Ids;
  for (const Config &C : Configs) {
    std::vector<std::array<size_t, 2>> PerWorkload;
    for (const std::string &W : BenchContext::allWorkloadNames())
      PerWorkload.push_back(
          {Runner.enqueue(W, arch::x86Model(), C.Opts),
           Runner.enqueue(W, arch::sparcModel(), C.Opts)});
    Ids.push_back(std::move(PerWorkload));
  }
  Runner.runAll();

  std::vector<std::string> Names = BenchContext::allWorkloadNames();
  size_t Next = 0;
  for (const Config &C : Configs) {
    const std::vector<std::array<size_t, 2>> &PerWorkload = Ids[Next++];
    std::vector<Measurement> X86All, SparcAll;
    Measurement Perl, Eon;
    for (size_t I = 0; I != Names.size(); ++I) {
      const Measurement &MX = Runner.result(PerWorkload[I][0]);
      X86All.push_back(MX);
      SparcAll.push_back(Runner.result(PerWorkload[I][1]));
      if (Names[I] == "perlbmk")
        Perl = MX;
      if (Names[I] == "eon")
        Eon = MX;
    }
    T.beginRow()
        .addCell(std::string(C.Name))
        .addCell(geoMeanSlowdown(X86All), 3)
        .addCell(geoMeanSlowdown(SparcAll), 3)
        .addCell(Perl.slowdown(), 3)
        .addCell(Eon.slowdown(), 3);
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: with fast returns absorbing the return "
              "class, the mixes sit\nbetween the uniform configurations "
              "per machine — the per-class choice is a\nsecond-order "
              "effect once returns are handled well, matching the "
              "paper's focus\non return handling first.\n");
  return 0;
}
