//===- bench/abl_compiled_code.cpp - Ablation: compiler output -----*- C++ -*-===//
//
// Part of StrataIB.
//
// Ablation: do the mechanism findings transfer from hand-written proxies
// to *compiler-generated* guest code? The `minc` workload comes out of
// the girc MinC compiler (frame-pointer prologues, accumulator-style
// expression code, function-pointer dispatch) — the same mechanism
// ordering should hold on it.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <array>
#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("A6 (Ablation: compiled guest code)",
              "girc-compiled workload across mechanisms, both models",
              Scale);
  BenchContext Ctx(Scale);

  struct Config {
    const char *Name;
    core::SdtOptions Opts;
  };
  std::vector<Config> Configs;
  auto add = [&Configs](const char *Name, auto Mutate) {
    core::SdtOptions O;
    Mutate(O);
    Configs.push_back({Name, O});
  };
  add("dispatcher", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Dispatcher;
  });
  add("ibtc", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Ibtc;
  });
  add("sieve", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Sieve;
  });
  add("ibtc+fastret", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Ibtc;
    O.Returns = core::ReturnStrategy::FastReturn;
  });
  add("ibtc+fastret+traces", [](core::SdtOptions &O) {
    O.Mechanism = core::IBMechanism::Ibtc;
    O.Returns = core::ReturnStrategy::FastReturn;
    O.EnableTraces = true;
  });

  TableFormatter T({"configuration", "x86", "sparc", "ret-hit%x86"});
  ParallelRunner Runner(Ctx, "abl_compiled_code");
  std::vector<std::array<size_t, 2>> Ids;
  for (const Config &C : Configs)
    Ids.push_back({Runner.enqueue("minc", arch::x86Model(), C.Opts),
                   Runner.enqueue("minc", arch::sparcModel(), C.Opts)});
  Runner.runAll();

  size_t Next = 0;
  for (const Config &C : Configs) {
    const std::array<size_t, 2> &Cell = Ids[Next++];
    Measurement X = Runner.result(Cell[0]);
    Measurement S = Runner.result(Cell[1]);
    T.beginRow()
        .addCell(std::string(C.Name))
        .addCell(X.slowdown(), 3)
        .addCell(S.slowdown(), 3)
        .addCell(100.0 * X.Stats.inlineHitRate(core::IBClass::Return), 2);
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: the ordering from the proxies transfers — "
              "dispatcher worst,\ninline mechanisms close, fast returns "
              "the big winner on this call-heavy\ncompiled code, traces "
              "shaving block-chaining on top.\n");
  return 0;
}
