//===- bench/micro_primitives.cpp - Core primitive microbenchmarks -*- C++-*-===//
//
// Part of StrataIB.
//
// google-benchmark microbenchmarks for the library's hot primitives:
// address hashing, cache simulation, branch prediction, decode,
// interpretation, and translated execution throughput.
//
//===----------------------------------------------------------------------===//

#include "arch/BranchPredictor.h"
#include "arch/CacheSim.h"
#include "arch/MachineModel.h"
#include "assembler/Assembler.h"
#include "core/FragmentCache.h"
#include "core/SdtEngine.h"
#include "isa/Encoding.h"
#include "support/Hashing.h"
#include "support/Rng.h"
#include "vm/GuestVM.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace sdt;

static void BM_HashAddress(benchmark::State &State) {
  HashKind Kind = static_cast<HashKind>(State.range(0));
  uint32_t Addr = 0x1000;
  for (auto _ : State) {
    benchmark::DoNotOptimize(hashAddress(Kind, Addr, 4096));
    Addr += 4;
  }
}
BENCHMARK(BM_HashAddress)
    ->Arg(static_cast<int>(HashKind::ShiftMask))
    ->Arg(static_cast<int>(HashKind::XorFold))
    ->Arg(static_cast<int>(HashKind::Fibonacci));

static void BM_Mix64(benchmark::State &State) {
  uint64_t X = 1;
  for (auto _ : State)
    benchmark::DoNotOptimize(X = mix64(X));
}
BENCHMARK(BM_Mix64);

static void BM_RngNext(benchmark::State &State) {
  Rng R(42);
  for (auto _ : State)
    benchmark::DoNotOptimize(R.next());
}
BENCHMARK(BM_RngNext);

static void BM_CacheSimAccess(benchmark::State &State) {
  arch::CacheSim Cache({16 * 1024, 64, 4});
  Rng R(7);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Cache.access(static_cast<uint32_t>(R.nextBelow(1 << 20))));
}
BENCHMARK(BM_CacheSimAccess);

// The MRU fast path: repeated hits on the same line are the simulator's
// dominant cache pattern (straight-line fetch, repeated table probes).
static void BM_CacheSimAccessMruHit(benchmark::State &State) {
  arch::CacheSim Cache({16 * 1024, 64, 4});
  Cache.access(0x1000);
  for (auto _ : State)
    benchmark::DoNotOptimize(Cache.access(0x1000));
}
BENCHMARK(BM_CacheSimAccessMruHit);

// The slow path the memo skips: hits that alternate between two lines of
// the same set, forcing a way scan on every access.
static void BM_CacheSimAccessSetScan(benchmark::State &State) {
  arch::CacheSim Cache({16 * 1024, 64, 4});
  // Same set, different tags: addresses 16KB/4-way = 4KB apart.
  const uint32_t A = 0x1000, B = 0x1000 + 4096;
  Cache.access(A);
  Cache.access(B);
  bool Flip = false;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Cache.access(Flip ? A : B));
    Flip = !Flip;
  }
}
BENCHMARK(BM_CacheSimAccessSetScan);

// FragmentCache::lookup on the same hot guest PC: served by the
// one-entry memo without touching the hash map.
static void BM_FragmentCacheLookupMemoHit(benchmark::State &State) {
  core::FragmentCache FC(1 << 20);
  for (uint32_t I = 0; I != 64; ++I) {
    core::Fragment F;
    F.GuestEntry = 0x1000 + I * 4;
    F.HostEntryAddr = FC.allocateBytes(16);
    core::HostInstr HI;
    HI.HostAddr = F.HostEntryAddr;
    F.Code.push_back(HI);
    FC.insert(std::move(F));
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(FC.lookup(0x1000 + 32 * 4));
}
BENCHMARK(BM_FragmentCacheLookupMemoHit);

// Alternating guest PCs defeat the memo: every lookup pays the hash-map
// probe — the cost the memo removes from hot dispatch.
static void BM_FragmentCacheLookupAlternating(benchmark::State &State) {
  core::FragmentCache FC(1 << 20);
  for (uint32_t I = 0; I != 64; ++I) {
    core::Fragment F;
    F.GuestEntry = 0x1000 + I * 4;
    F.HostEntryAddr = FC.allocateBytes(16);
    core::HostInstr HI;
    HI.HostAddr = F.HostEntryAddr;
    F.Code.push_back(HI);
    FC.insert(std::move(F));
  }
  bool Flip = false;
  for (auto _ : State) {
    benchmark::DoNotOptimize(FC.lookup(Flip ? 0x1000 : 0x1000 + 63 * 4));
    Flip = !Flip;
  }
}
BENCHMARK(BM_FragmentCacheLookupAlternating);

static void BM_PredictorConditional(benchmark::State &State) {
  arch::BranchPredictor P({4096, 512, 16});
  uint32_t Pc = 0x1000;
  bool Taken = false;
  for (auto _ : State) {
    benchmark::DoNotOptimize(P.predictConditional(Pc, Taken));
    Pc = (Pc + 4) & 0xFFFF;
    Taken = !Taken;
  }
}
BENCHMARK(BM_PredictorConditional);

static void BM_DecodeInstruction(benchmark::State &State) {
  uint32_t Word = isa::encode(isa::makeI(isa::Opcode::Addi, 3, 4, 42));
  for (auto _ : State)
    benchmark::DoNotOptimize(isa::decode(Word));
}
BENCHMARK(BM_DecodeInstruction);

static void BM_AssembleWorkload(benchmark::State &State) {
  Expected<std::string> Src = workloads::workloadSource("gcc", 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(assembler::assemble(*Src));
}
BENCHMARK(BM_AssembleWorkload)->Unit(benchmark::kMillisecond);

static void BM_InterpreterThroughput(benchmark::State &State) {
  Expected<isa::Program> P = workloads::buildWorkload("mcf", 1);
  uint64_t Instrs = 0;
  for (auto _ : State) {
    auto VM = vm::GuestVM::create(*P, vm::ExecOptions());
    vm::RunResult R = (*VM)->run();
    Instrs += R.InstructionCount;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_InterpreterThroughput)->Unit(benchmark::kMillisecond);

static void BM_InterpreterTimedThroughput(benchmark::State &State) {
  Expected<isa::Program> P = workloads::buildWorkload("mcf", 1);
  arch::MachineModel Model = arch::x86Model();
  uint64_t Instrs = 0;
  for (auto _ : State) {
    arch::TimingModel Timing(Model);
    vm::ExecOptions Exec;
    Exec.Timing = &Timing;
    auto VM = vm::GuestVM::create(*P, Exec);
    vm::RunResult R = (*VM)->run();
    Instrs += R.InstructionCount;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_InterpreterTimedThroughput)->Unit(benchmark::kMillisecond);

// --- Speculative-guard cost rows ------------------------------------------
//
// Three variants of the same monomorphic indirect-jump loop, isolating
// the per-crossing cost of (a) the bound mechanism's full dispatch, (b)
// a speculation-guard hit, and (c) a sustained guard miss falling back
// to the mechanism. Items = IB crossings; the sim_cycles_per_crossing
// counter carries the simulated-cycle cost (loop bookkeeping included,
// identical across the three rows, so deltas are the guard economics).

namespace {

constexpr uint32_t GuardLoopIters = 20000;

const char *guardHitSrc() {
  return R"(
main:
    la   t0, tgt
    li   t4, 20000
    li   s1, 0
loop:
    addi s1, s1, 1
    jr   t0
back:
    blt  s1, t4, loop
    li   a0, 0
    li   v0, 0
    syscall
tgt:
    j    back
)";
}

const char *guardMissSrc() {
  // Monomorphic to tgta long enough to build the speculative trace,
  // then switches to tgtb forever: every later crossing misses the
  // guard and takes the fallback site.
  return R"(
main:
    la   t0, tgta
    la   t1, tgtb
    li   t4, 20000
    li   t5, 1000
    li   s1, 0
loop:
    addi s1, s1, 1
    jr   t0
back:
    bne  s1, t5, skip
    move t0, t1
skip:
    blt  s1, t4, loop
    li   a0, 0
    li   v0, 0
    syscall
tgta:
    j    back
tgtb:
    j    back
)";
}

void runGuardLoop(benchmark::State &State, const char *Src,
                  bool Speculate) {
  Expected<isa::Program> P = assembler::assemble(Src);
  uint64_t Crossings = 0;
  uint64_t SimCycles = 0;
  for (auto _ : State) {
    arch::TimingModel Timing(arch::simpleModel());
    vm::ExecOptions Exec;
    Exec.Timing = &Timing;
    core::SdtOptions Opts;
    Opts.Mechanism = core::IBMechanism::Ibtc;
    Opts.EnableTraces = true;
    Opts.TraceHotThreshold = 8;
    Opts.OptimizeTraces = true;
    Opts.TraceSpeculate = Speculate;
    Opts.TraceSpeculateThreshold = 4;
    auto Engine = core::SdtEngine::create(*P, Opts, Exec);
    vm::RunResult R = (*Engine)->run();
    benchmark::DoNotOptimize(R.Checksum);
    Crossings += GuardLoopIters;
    SimCycles += Timing.totalCycles();
  }
  State.SetItemsProcessed(static_cast<int64_t>(Crossings));
  State.counters["sim_cycles_per_crossing"] =
      Crossings ? static_cast<double>(SimCycles) /
                      static_cast<double>(Crossings)
                : 0.0;
}

} // namespace

static void BM_IBCrossingHandlerDispatch(benchmark::State &State) {
  runGuardLoop(State, guardHitSrc(), /*Speculate=*/false);
}
BENCHMARK(BM_IBCrossingHandlerDispatch)->Unit(benchmark::kMillisecond);

static void BM_IBCrossingGuardHit(benchmark::State &State) {
  runGuardLoop(State, guardHitSrc(), /*Speculate=*/true);
}
BENCHMARK(BM_IBCrossingGuardHit)->Unit(benchmark::kMillisecond);

static void BM_IBCrossingGuardMiss(benchmark::State &State) {
  runGuardLoop(State, guardMissSrc(), /*Speculate=*/true);
}
BENCHMARK(BM_IBCrossingGuardMiss)->Unit(benchmark::kMillisecond);

static void BM_SdtThroughput(benchmark::State &State) {
  Expected<isa::Program> P = workloads::buildWorkload("gcc", 1);
  uint64_t Instrs = 0;
  for (auto _ : State) {
    auto Engine =
        core::SdtEngine::create(*P, core::SdtOptions(), vm::ExecOptions());
    vm::RunResult R = (*Engine)->run();
    Instrs += R.InstructionCount;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instrs));
}
BENCHMARK(BM_SdtThroughput)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
