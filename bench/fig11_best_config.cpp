//===- bench/fig11_best_config.cpp - E12: best combined config -----*- C++ -*-===//
//
// Part of StrataIB.
//
// Reproduces the closing figure: the dispatcher-only baseline against
// the best combined configuration (tuned IBTC, light flag save, fast
// returns, one inline prediction) on both machine models — how far
// careful IB handling takes an SDT.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <array>
#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E12 (Fig: best configuration)",
              "dispatcher baseline vs tuned configuration", Scale);
  BenchContext Ctx(Scale);

  core::SdtOptions Baseline;
  Baseline.Mechanism = core::IBMechanism::Dispatcher;

  core::SdtOptions Best;
  Best.Mechanism = core::IBMechanism::Ibtc;
  Best.IbtcEntries = 16384;
  Best.FullFlagSave = false;
  Best.Returns = core::ReturnStrategy::FastReturn;
  Best.InlineCacheDepth = 1;

  TableFormatter T({"benchmark", "x86-baseline", "x86-best", "x86-speedup",
                    "sparc-baseline", "sparc-best", "sparc-speedup"});
  std::vector<Measurement> XB, XT, SB, ST;

  ParallelRunner Runner(Ctx, "fig11_best_config");
  std::vector<std::array<size_t, 4>> Ids;
  for (const std::string &W : BenchContext::allWorkloadNames())
    Ids.push_back({Runner.enqueue(W, arch::x86Model(), Baseline),
                   Runner.enqueue(W, arch::x86Model(), Best),
                   Runner.enqueue(W, arch::sparcModel(), Baseline),
                   Runner.enqueue(W, arch::sparcModel(), Best)});
  Runner.runAll();

  size_t Next = 0;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    const std::array<size_t, 4> &Cell = Ids[Next++];
    Measurement MXB = Runner.result(Cell[0]);
    Measurement MXT = Runner.result(Cell[1]);
    Measurement MSB = Runner.result(Cell[2]);
    Measurement MST = Runner.result(Cell[3]);
    XB.push_back(MXB);
    XT.push_back(MXT);
    SB.push_back(MSB);
    ST.push_back(MST);
    T.beginRow()
        .addCell(W)
        .addCell(MXB.slowdown(), 2)
        .addCell(MXT.slowdown(), 2)
        .addCell(MXB.slowdown() / MXT.slowdown(), 2)
        .addCell(MSB.slowdown(), 2)
        .addCell(MST.slowdown(), 2)
        .addCell(MSB.slowdown() / MST.slowdown(), 2);
  }
  T.beginRow()
      .addCell(std::string("geo-mean"))
      .addCell(geoMeanSlowdown(XB), 2)
      .addCell(geoMeanSlowdown(XT), 2)
      .addCell(geoMeanSlowdown(XB) / geoMeanSlowdown(XT), 2)
      .addCell(geoMeanSlowdown(SB), 2)
      .addCell(geoMeanSlowdown(ST), 2)
      .addCell(geoMeanSlowdown(SB) / geoMeanSlowdown(ST), 2);

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: tuned IB handling removes most of the "
              "baseline's overhead;\nresidual slowdown concentrates in "
              "the megamorphic interpreter proxies, and\nthe IB-light "
              "benchmarks sit near 1x in both columns.\n");
  return 0;
}
