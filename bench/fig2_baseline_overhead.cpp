//===- bench/fig2_baseline_overhead.cpp - E2: baseline overhead --*- C++ -*-===//
//
// Part of StrataIB.
//
// Reproduces the baseline figure: SDT slowdown with dispatcher-only IB
// handling (fragment linking on, so direct branches are already cheap),
// normalised to native, per benchmark. The cycle breakdown shows the
// residual overhead is the IB slow path — the paper's motivation.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E2 (Fig: baseline)",
              "dispatcher-only SDT overhead, x86 model", Scale);
  BenchContext Ctx(Scale);

  arch::MachineModel Model = arch::x86Model();
  core::SdtOptions Opts;
  Opts.Mechanism = core::IBMechanism::Dispatcher;

  TableFormatter T({"benchmark", "native(kcyc)", "sdt(kcyc)", "slowdown",
                    "dispatch%", "translate%", "ib/1k"});
  std::vector<Measurement> All;

  ParallelRunner Runner(Ctx, "fig2_baseline_overhead");
  std::vector<size_t> Ids;
  for (const std::string &W : BenchContext::allWorkloadNames())
    Ids.push_back(Runner.enqueue(W, Model, Opts));
  Runner.runAll();

  size_t Next = 0;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    const Measurement &M = Runner.result(Ids[Next++]);
    All.push_back(M);
    T.beginRow()
        .addCell(W)
        .addCell(M.NativeCycles / 1000)
        .addCell(M.SdtCycles / 1000)
        .addCell(M.slowdown(), 2)
        .addCell(100.0 * M.categoryShare(arch::CycleCategory::Dispatch), 1)
        .addCell(100.0 * M.categoryShare(arch::CycleCategory::Translate),
                 1)
        .addCell(1000.0 * static_cast<double>(M.NativeCti.indirectTotal()) /
                     static_cast<double>(M.Instructions),
                 2);
  }
  T.beginRow()
      .addCell(std::string("geo-mean"))
      .addCell(std::string("-"))
      .addCell(std::string("-"))
      .addCell(geoMeanSlowdown(All), 2)
      .addCell(std::string("-"))
      .addCell(std::string("-"))
      .addCell(std::string("-"));

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: overhead tracks IB density; IB-light "
              "benchmarks (mcf, bzip2, gzip)\nare near 1x, interpreter "
              "proxies are the worst, and dispatch%% dominates the\n"
              "translated cycles wherever slowdown is large.\n");
  return 0;
}
