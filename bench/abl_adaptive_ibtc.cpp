//===- bench/abl_adaptive_ibtc.cpp - Ablation: adaptive sizing -----*- C++ -*-===//
//
// Part of StrataIB.
//
// Ablation: reprobe-and-resize. A fixed IBTC must be provisioned for the
// worst program; an adaptive table starts tiny and quadruples itself when
// conflict replacements exceed a quarter of its capacity — reaching
// near-big-table performance while IB-light programs keep a near-zero
// footprint.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <array>
#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("A5 (Ablation: adaptive IBTC)",
              "fixed-small vs adaptive vs fixed-large tables, x86 model",
              Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  core::SdtOptions FixedSmall;
  FixedSmall.Mechanism = core::IBMechanism::Ibtc;
  FixedSmall.IbtcEntries = 16;

  core::SdtOptions Adaptive = FixedSmall;
  Adaptive.IbtcAdaptive = true;
  Adaptive.IbtcMaxEntries = 65536;

  core::SdtOptions FixedLarge = FixedSmall;
  FixedLarge.IbtcEntries = 16384;

  TableFormatter T({"benchmark", "fixed-16", "adaptive(16..)",
                    "fixed-16384", "hit%adaptive"});
  std::vector<Measurement> Small, Adapt, Large;

  ParallelRunner Runner(Ctx, "abl_adaptive_ibtc");
  std::vector<std::array<size_t, 3>> Ids;
  for (const std::string &W : BenchContext::allWorkloadNames())
    Ids.push_back({Runner.enqueue(W, Model, FixedSmall),
                   Runner.enqueue(W, Model, Adaptive),
                   Runner.enqueue(W, Model, FixedLarge)});
  Runner.runAll();

  size_t Next = 0;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    const std::array<size_t, 3> &Cell = Ids[Next++];
    Measurement S = Runner.result(Cell[0]);
    Measurement A = Runner.result(Cell[1]);
    Measurement L = Runner.result(Cell[2]);
    Small.push_back(S);
    Adapt.push_back(A);
    Large.push_back(L);
    T.beginRow()
        .addCell(W)
        .addCell(S.slowdown(), 3)
        .addCell(A.slowdown(), 3)
        .addCell(L.slowdown(), 3)
        .addCell(100.0 * A.mainHitRate(), 2);
  }
  T.beginRow()
      .addCell(std::string("geo-mean"))
      .addCell(geoMeanSlowdown(Small), 3)
      .addCell(geoMeanSlowdown(Adapt), 3)
      .addCell(geoMeanSlowdown(Large), 3)
      .addCell(std::string("-"));

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: adaptive sizing tracks the fixed-large "
              "table's performance on\nIB-heavy benchmarks (after a "
              "short resize warm-up) and matches the small\ntable where "
              "few targets ever exist.\n");
  return 0;
}
