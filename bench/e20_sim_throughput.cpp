//===- bench/e20_sim_throughput.cpp - E20: simulator throughput --*- C++ -*-===//
//
// Part of StrataIB.
//
// E20: how much faster does the pre-decoded plan engine (src/exec) run
// the simulator than the legacy per-instruction switch, and does it stay
// bit-identical while doing so? Sweeps the fig2-style mechanism axis
// (dispatcher, ibtc, sieve, ibtc+inline2) over the full workload suite
// (x86 model), running every cell twice — once per execution engine —
// and comparing:
//
//   identity — every modeled field of the two Measurements (cycles,
//              per-category cycles, stats block, mechanism counters,
//              run results) must match exactly. This is the engine
//              bit-identity invariant (docs/ExecutionEngine.md) measured
//              end-to-end rather than unit-by-unit.
//   speedup  — per-cell sim_wall_ms ratio (switch / plan), reported
//              per workload and as per-mechanism + overall geo-means.
//
// Wall-clock is host noise by definition, so the speedup acceptance is
// tolerance-based: the overall geo-mean must reach
// STRATAIB_E20_MIN_SPEEDUP (default 1.3x; 0 disables, which the
// sanitizer ctest flavours use because instrumentation deliberately
// destroys the ratio). The headline number — 1.6x geo-mean at
// STRATAIB_SCALE=100 with STRATAIB_JOBS=1, the hottest cells past 2x —
// lives in results/e20_sim_throughput_scale100.txt; the default
// threshold is set well below it so scheduling jitter and
// small ctest scales cannot flake the suite, while a real throughput
// regression (plan engine silently deoptimizing, fusion breaking) still
// fails loudly. The identity acceptance has no tolerance at all.
//
// STRATAIB_EXEC pins both cells of every pair to one engine, collapsing
// the comparison axis: the binary prints a note and skips the speedup
// acceptance (identity then holds trivially). Leave it unset when this
// sweep is the point.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace sdt;
using namespace sdt::bench;

namespace {

struct Mechanism {
  const char *Label;
  core::SdtOptions Opts;
};

/// Strict parser for STRATAIB_E20_MIN_SPEEDUP: a decimal factor like
/// "1.3" (0 disables the speedup acceptance). Garbage exits 2 before any
/// cell runs, matching the other STRATAIB_* knobs.
double minSpeedupFromEnv(double Fallback) {
  const char *Env = std::getenv("STRATAIB_E20_MIN_SPEEDUP");
  if (!Env || !*Env)
    return Fallback;
  char *End = nullptr;
  double V = std::strtod(Env, &End);
  if (End == Env || *End != '\0' || !(V >= 0.0) || V > 100.0) {
    std::fprintf(stderr,
                 "bench: invalid STRATAIB_E20_MIN_SPEEDUP '%s' (expected a "
                 "factor in [0, 100]; 0 disables the check)\n",
                 Env);
    std::exit(2);
  }
  return V;
}

/// Returns null when every modeled (deterministic) field of the two
/// measurements matches, else a static name of the first mismatching
/// field. Wall-clock, throughput, and the engine label are the only
/// fields allowed to differ.
const char *firstModeledMismatch(const Measurement &A, const Measurement &B) {
#define SDT_E20_EQ(Field)                                                      \
  if (A.Field != B.Field)                                                      \
  return #Field
  SDT_E20_EQ(NativeCycles);
  SDT_E20_EQ(SdtCycles);
  SDT_E20_EQ(SdtByCategory);
  SDT_E20_EQ(Instructions);
  SDT_E20_EQ(Transparent);
  SDT_E20_EQ(MainLookups);
  SDT_E20_EQ(MainHits);
  SDT_E20_EQ(SdtIndirectLookups);
  SDT_E20_EQ(SdtIndirectMispredicts);
  SDT_E20_EQ(SdtReturnLookups);
  SDT_E20_EQ(SdtReturnMispredicts);
  SDT_E20_EQ(Stats.FragmentsTranslated);
  SDT_E20_EQ(Stats.GuestInstrsTranslated);
  SDT_E20_EQ(Stats.DispatchEntries);
  SDT_E20_EQ(Stats.LinksPatched);
  SDT_E20_EQ(Stats.Syscalls);
  SDT_E20_EQ(Stats.IBExecs);
  SDT_E20_EQ(Stats.IBInlineHits);
  SDT_E20_EQ(Stats.FastReturnDirect);
  SDT_E20_EQ(Stats.FastReturnFallback);
  SDT_E20_EQ(Stats.ShadowStackHits);
  SDT_E20_EQ(Stats.ShadowStackMisses);
  SDT_E20_EQ(Stats.LinksUnlinked);
  SDT_E20_EQ(Stats.Flushes);
  SDT_E20_EQ(Stats.PartialEvictions);
  SDT_E20_EQ(Stats.EvictedBytes);
  SDT_E20_EQ(Stats.RetranslationsAfterEviction);
  SDT_E20_EQ(Stats.CodeWriteInvalidations);
  SDT_E20_EQ(Stats.FragmentsInvalidatedByWrite);
  SDT_E20_EQ(Stats.StaleBytesDiscarded);
  SDT_E20_EQ(Stats.TracesBuilt);
  SDT_E20_EQ(Stats.TracesOptimized);
  SDT_E20_EQ(Stats.SpecGuardsEmitted);
  SDT_E20_EQ(Stats.SpecGuardHits);
  SDT_E20_EQ(Stats.SpecGuardMisses);
#undef SDT_E20_EQ
  return nullptr;
}

} // namespace

int main() {
  uint32_t Scale = scaleFromEnv(15);
  printHeader("E20 (simulator throughput)",
              "plan vs switch engine: wall-clock + bit-identity, x86 model",
              Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();
  double MinSpeedup = minSpeedupFromEnv(1.3);

  // STRATAIB_EXEC pins every cell to one engine, collapsing the
  // plan-vs-switch axis this experiment exists to measure.
  const char *PinEnv = std::getenv("STRATAIB_EXEC");
  const bool EnginePinned = PinEnv && *PinEnv;
  if (EnginePinned)
    std::printf("note: STRATAIB_EXEC='%s' pins both engines of every pair; "
                "the speedup axis below\nis collapsed and the throughput "
                "acceptance check is skipped. Unset it to run\nthe real "
                "comparison.\n\n",
                PinEnv);

  std::vector<Mechanism> Mechanisms;
  {
    core::SdtOptions Disp;
    Disp.Mechanism = core::IBMechanism::Dispatcher;
    Mechanisms.push_back({"dispatcher", Disp});

    core::SdtOptions Ibtc;
    Ibtc.Mechanism = core::IBMechanism::Ibtc;
    Mechanisms.push_back({"ibtc", Ibtc});

    core::SdtOptions Sieve;
    Sieve.Mechanism = core::IBMechanism::Sieve;
    Mechanisms.push_back({"sieve", Sieve});

    core::SdtOptions Inline;
    Inline.Mechanism = core::IBMechanism::Ibtc;
    Inline.InlineCacheDepth = 2;
    Mechanisms.push_back({"ibtc+inline2", Inline});
  }

  const std::vector<std::string> Workloads = BenchContext::allWorkloadNames();

  ParallelRunner Runner(Ctx, "e20_sim_throughput");
  // Ids[mech][workload] = {switch cell, plan cell}.
  std::vector<std::vector<std::pair<size_t, size_t>>> Ids(Mechanisms.size());
  for (size_t MI = 0; MI != Mechanisms.size(); ++MI)
    for (const std::string &W : Workloads) {
      core::SdtOptions Switch = Mechanisms[MI].Opts;
      Switch.Engine = core::ExecEngineKind::Switch;
      core::SdtOptions Plan = Mechanisms[MI].Opts;
      Plan.Engine = core::ExecEngineKind::Plan;
      Ids[MI].push_back({Runner.enqueue(W, Model, Switch),
                         Runner.enqueue(W, Model, Plan)});
    }
  Runner.runAll();

  bool Identical = true;
  std::vector<double> AllRatios;
  std::vector<double> MechGeo(Mechanisms.size(), 0.0);

  for (size_t MI = 0; MI != Mechanisms.size(); ++MI) {
    std::printf("--- mechanism: %s ---\n", Mechanisms[MI].Label);
    TableFormatter T({"benchmark", "switch ms", "plan ms", "speedup",
                      "switch Mi/s", "plan Mi/s", "identical"});
    double LogSum = 0.0;
    for (size_t WI = 0; WI != Workloads.size(); ++WI) {
      const Measurement &S = Runner.result(Ids[MI][WI].first);
      const Measurement &P = Runner.result(Ids[MI][WI].second);
      const char *Mismatch = firstModeledMismatch(S, P);
      if (Mismatch) {
        Identical = false;
        std::printf("IDENTITY MISMATCH: %s/%s field %s (switch vs plan)\n",
                    Mechanisms[MI].Label, Workloads[WI].c_str(), Mismatch);
      }
      double Ratio = P.SimWallMs > 0.0 ? S.SimWallMs / P.SimWallMs : 1.0;
      AllRatios.push_back(Ratio);
      LogSum += std::log(Ratio);
      T.beginRow()
          .addCell(Workloads[WI])
          .addCell(S.SimWallMs, 2)
          .addCell(P.SimWallMs, 2)
          .addCell(Ratio, 2)
          .addCell(S.guestInstrsPerSec() / 1e6, 2)
          .addCell(P.guestInstrsPerSec() / 1e6, 2)
          .addCell(std::string(Mismatch ? "NO" : "yes"));
    }
    MechGeo[MI] = std::exp(LogSum / static_cast<double>(Workloads.size()));
    T.beginRow()
        .addCell(std::string("geo-mean"))
        .addCell(std::string(""))
        .addCell(std::string(""))
        .addCell(MechGeo[MI], 2)
        .addCell(std::string(""))
        .addCell(std::string(""))
        .addCell(std::string(""));
    std::printf("%s\n", T.render().c_str());
  }

  double LogSum = 0.0;
  for (double R : AllRatios)
    LogSum += std::log(R);
  double OverallGeo = std::exp(LogSum / static_cast<double>(AllRatios.size()));

  std::printf("Per-mechanism geo-mean speedup (switch wall / plan wall):\n");
  for (size_t MI = 0; MI != Mechanisms.size(); ++MI)
    std::printf("  %-14s %.2fx\n", Mechanisms[MI].Label, MechGeo[MI]);
  std::printf("overall geo-mean speedup: %.2fx\n\n", OverallGeo);
  std::printf("Shape targets: identical modeled results per cell pair "
              "(cycles, categories,\nstats, mechanism counters), and the "
              "plan engine clearly faster everywhere —\nfused superop runs "
              "skip per-op dispatch, charge cycles in batches, and probe\n"
              "the I-cache once per line span instead of once per "
              "instruction.\n\n");

  bool Ok = true;
  auto Check = [&Ok](bool Cond, const char *What) {
    std::printf("acceptance: %-44s %s\n", What, Cond ? "ok" : "FAIL");
    if (!Cond)
      Ok = false;
  };
  Check(Identical, "plan and switch modeled results bit-identical");
  if (EnginePinned)
    std::printf("acceptance: speedup check SKIPPED (STRATAIB_EXEC pinned "
                "by env)\n");
  else if (MinSpeedup <= 0.0)
    std::printf("acceptance: speedup check SKIPPED "
                "(STRATAIB_E20_MIN_SPEEDUP=0)\n");
  else {
    std::string What = "overall geo-mean speedup >= " +
                       std::to_string(MinSpeedup).substr(0, 4) + "x";
    Check(OverallGeo >= MinSpeedup, What.c_str());
  }

  if (!Ok)
    return 1;
  std::printf("acceptance: all checks passed\n");
  return 0;
}
