//===- bench/fig4_ibtc_shared_vs_private.cpp - E4 -----------------*- C++ -*-===//
//
// Part of StrataIB.
//
// Reproduces the shared-vs-private IBTC figure: one table for all IB
// sites vs. one table per site (equal size, and a smaller per-site size
// that reflects the private variant's memory budget).
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <array>
#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E4 (Fig: shared vs private IBTC)",
              "table sharing policy, x86 model", Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  auto configFor = [](bool Shared, uint32_t Entries) {
    core::SdtOptions O;
    O.Mechanism = core::IBMechanism::Ibtc;
    O.IbtcShared = Shared;
    O.IbtcEntries = Entries;
    return O;
  };

  TableFormatter T({"benchmark", "shared-4096", "private-4096",
                    "private-256", "hit%shared", "hit%priv256"});
  std::vector<Measurement> Shared, Private, PrivateSmall;

  ParallelRunner Runner(Ctx, "fig4_ibtc_shared_vs_private");
  std::vector<std::array<size_t, 3>> Ids;
  for (const std::string &W : BenchContext::allWorkloadNames())
    Ids.push_back({Runner.enqueue(W, Model, configFor(true, 4096)),
                   Runner.enqueue(W, Model, configFor(false, 4096)),
                   Runner.enqueue(W, Model, configFor(false, 256))});
  Runner.runAll();

  size_t Next = 0;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    const std::array<size_t, 3> &Cell = Ids[Next++];
    Measurement S = Runner.result(Cell[0]);
    Measurement P = Runner.result(Cell[1]);
    Measurement Q = Runner.result(Cell[2]);
    Shared.push_back(S);
    Private.push_back(P);
    PrivateSmall.push_back(Q);
    T.beginRow()
        .addCell(W)
        .addCell(S.slowdown(), 3)
        .addCell(P.slowdown(), 3)
        .addCell(Q.slowdown(), 3)
        .addCell(100.0 * S.mainHitRate(), 2)
        .addCell(100.0 * Q.mainHitRate(), 2);
  }
  T.beginRow()
      .addCell(std::string("geo-mean"))
      .addCell(geoMeanSlowdown(Shared), 3)
      .addCell(geoMeanSlowdown(Private), 3)
      .addCell(geoMeanSlowdown(PrivateSmall), 3)
      .addCell(std::string("-"))
      .addCell(std::string("-"));

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: a shared table lets every site reuse every "
              "translation\n(cold misses paid once per target); private "
              "tables pay cold misses per site\nand lose when sites share "
              "targets (returns to common callees). Small private\ntables "
              "add conflict misses on high-fan-out sites.\n");
  return 0;
}
