//===- bench/fig6_sieve_size.cpp - E6: sieve bucket sweep ----------*- C++ -*-===//
//
// Part of StrataIB.
//
// Reproduces the sieve-size figure: slowdown vs. bucket count from 2^4 to
// 2^16. Few buckets mean long compare-and-branch chains (I-cache traffic
// and per-stub compares); many buckets stop helping once chains reach
// length one.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <algorithm>
#include <map>
#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E6 (Fig: sieve size)",
              "slowdown vs. sieve bucket count, x86 model", Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  const std::vector<std::string> Shown = {"perlbmk", "gap",    "parser",
                                          "gcc",     "crafty", "vortex"};
  std::vector<std::string> Headers = {"buckets"};
  for (const std::string &W : Shown)
    Headers.push_back(W);
  Headers.push_back("geomean-12");
  TableFormatter T(Headers);

  ParallelRunner Runner(Ctx, "fig6_sieve_size");
  struct Row {
    uint32_t Buckets;
    std::vector<size_t> Ids;
  };
  std::vector<Row> Rows;
  for (uint32_t Buckets = 4; Buckets <= 65536; Buckets *= 4) {
    core::SdtOptions Opts;
    Opts.Mechanism = core::IBMechanism::Sieve;
    Opts.SieveBuckets = Buckets;

    Row R;
    R.Buckets = Buckets;
    for (const std::string &W : BenchContext::allWorkloadNames())
      R.Ids.push_back(Runner.enqueue(W, Model, Opts));
    Rows.push_back(std::move(R));
  }
  Runner.runAll();

  std::vector<std::string> Names = BenchContext::allWorkloadNames();
  for (const Row &R : Rows) {
    std::vector<Measurement> All;
    std::map<std::string, double> Slowdowns;
    for (size_t I = 0; I != R.Ids.size(); ++I) {
      const Measurement &M = Runner.result(R.Ids[I]);
      All.push_back(M);
      Slowdowns[Names[I]] = M.slowdown();
    }
    T.beginRow().addCell(static_cast<uint64_t>(R.Buckets));
    for (const std::string &W : Shown)
      T.addCell(Slowdowns.at(W), 3);
    T.addCell(geoMeanSlowdown(All), 3);
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: the curve mirrors the IBTC sweep — steep "
              "improvement while\nchains shrink, flat once buckets "
              "outnumber live IB targets.\n");
  return 0;
}
