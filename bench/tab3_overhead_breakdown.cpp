//===- bench/tab3_overhead_breakdown.cpp - E13: where cycles go ----*- C++ -*-===//
//
// Part of StrataIB.
//
// Reproduces the overhead-decomposition table: for the tuned
// configuration, the share of translated cycles spent on application
// work, translation, dispatch, IB handling, and link patching — the
// paper's framing that after linking and warm-up, IB handling *is* the
// overhead.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E13 (Table: overhead breakdown)",
              "translated-cycle decomposition, tuned IBTC, x86 model",
              Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  core::SdtOptions Opts;
  Opts.Mechanism = core::IBMechanism::Ibtc;
  Opts.Returns = core::ReturnStrategy::FastReturn;

  TableFormatter T({"benchmark", "slowdown", "app%", "translate%",
                    "dispatch%", "ib-lookup%", "link%"});

  ParallelRunner Runner(Ctx, "tab3_overhead_breakdown");
  std::vector<size_t> Ids;
  for (const std::string &W : BenchContext::allWorkloadNames())
    Ids.push_back(Runner.enqueue(W, Model, Opts));
  Runner.runAll();

  size_t Next = 0;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    const Measurement &M = Runner.result(Ids[Next++]);
    T.beginRow()
        .addCell(W)
        .addCell(M.slowdown(), 3)
        .addCell(100.0 * M.categoryShare(arch::CycleCategory::App), 1)
        .addCell(100.0 * M.categoryShare(arch::CycleCategory::Translate),
                 1)
        .addCell(100.0 * M.categoryShare(arch::CycleCategory::Dispatch), 1)
        .addCell(100.0 * M.categoryShare(arch::CycleCategory::IBLookup), 1)
        .addCell(100.0 * M.categoryShare(arch::CycleCategory::Link), 1);
  }

  std::printf("%s\n", T.render().c_str());
  std::printf(
      "Shape targets: on IB-light benchmarks app%% is ~99%% (translation "
      "is the only\nresidual); on IB-dense benchmarks ib-lookup%% "
      "dominates — note it subsumes the\nindirect-branch resolution work "
      "(including mispredictions) that native\nexecution also pays, which "
      "is why slowdowns stay near 1.3x despite large\nib-lookup shares. "
      "dispatch%% and link%% are negligible once warm.\n");
  return 0;
}
