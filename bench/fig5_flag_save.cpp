//===- bench/fig5_flag_save.cpp - E5: flag-save ablation -----------*- C++ -*-===//
//
// Part of StrataIB.
//
// Reproduces the condition-code ablation: preserving flags around the
// IBTC probe the expensive architectural way (pushf/popf-style) vs. the
// light way (lahf/sahf-style), on both machine models. The paper's
// cross-architecture headline starts here: the choice matters enormously
// on x86 and barely at all on SPARC.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <array>
#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E5 (Fig: flag save)",
              "full vs light condition-code preservation, IBTC", Scale);
  BenchContext Ctx(Scale);

  auto configFor = [](bool Full) {
    core::SdtOptions O;
    O.Mechanism = core::IBMechanism::Ibtc;
    O.FullFlagSave = Full;
    return O;
  };

  TableFormatter T({"benchmark", "x86-full", "x86-light", "x86-gain%",
                    "sparc-full", "sparc-light", "sparc-gain%"});
  std::vector<Measurement> XF, XL, SF, SL;

  ParallelRunner Runner(Ctx, "fig5_flag_save");
  std::vector<std::array<size_t, 4>> Ids;
  for (const std::string &W : BenchContext::allWorkloadNames())
    Ids.push_back(
        {Runner.enqueue(W, arch::x86Model(), configFor(true)),
         Runner.enqueue(W, arch::x86Model(), configFor(false)),
         Runner.enqueue(W, arch::sparcModel(), configFor(true)),
         Runner.enqueue(W, arch::sparcModel(), configFor(false))});
  Runner.runAll();

  size_t Next = 0;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    const std::array<size_t, 4> &Cell = Ids[Next++];
    Measurement MXF = Runner.result(Cell[0]);
    Measurement MXL = Runner.result(Cell[1]);
    Measurement MSF = Runner.result(Cell[2]);
    Measurement MSL = Runner.result(Cell[3]);
    XF.push_back(MXF);
    XL.push_back(MXL);
    SF.push_back(MSF);
    SL.push_back(MSL);
    auto Gain = [](const Measurement &Full, const Measurement &Light) {
      return 100.0 * (Full.slowdown() - Light.slowdown()) /
             Full.slowdown();
    };
    T.beginRow()
        .addCell(W)
        .addCell(MXF.slowdown(), 3)
        .addCell(MXL.slowdown(), 3)
        .addCell(Gain(MXF, MXL), 1)
        .addCell(MSF.slowdown(), 3)
        .addCell(MSL.slowdown(), 3)
        .addCell(Gain(MSF, MSL), 1);
  }
  T.beginRow()
      .addCell(std::string("geo-mean"))
      .addCell(geoMeanSlowdown(XF), 3)
      .addCell(geoMeanSlowdown(XL), 3)
      .addCell(std::string("-"))
      .addCell(geoMeanSlowdown(SF), 3)
      .addCell(geoMeanSlowdown(SL), 3)
      .addCell(std::string("-"));

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: the light save wins clearly on the x86 "
              "model for IB-heavy\nbenchmarks and is near-noise on the "
              "SPARC model — the mechanism's best\nimplementation depends "
              "on the architecture.\n");
  return 0;
}
