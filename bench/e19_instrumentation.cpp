//===- bench/e19_instrumentation.cpp - E19: plugin overhead ------*- C++ -*-===//
//
// Part of StrataIB.
//
// E19: what does dynamic instrumentation cost under each IB mechanism?
// Sweeps mechanism × plugin set on the full workload suite (x86 model):
//
//   none     — the uninstrumented baseline (bit-identical to a run with
//              no plugin manager attached at all; pinned by ctest)
//   coverage — AFL-style edge-coverage bitmap (one probe per fragment
//              entry)
//   ibedges  — callsite→target edge matrix (one probe per resolved IB)
//   memcheck — uninitialised-load checker (one probe per guest load or
//              store)
//   all      — the three together
//
// The question: how much of a plugin's overhead depends on the IB
// mechanism underneath it? Probe work is charged to
// CycleCategory::Instrument and is (per guest event) constant, so the
// *relative* overhead of a plugin set shrinks as the baseline gets
// slower — the dispatcher's huge context-switch cost dilutes the same
// probe cycles that dominate on a fast IBTC translator. ibedges is the
// mechanism-sensitive probe (it fires per IB resolution, exactly the
// event the mechanisms compete on); memcheck is the expensive,
// mechanism-insensitive one (guest loads/stores don't care how IBs
// resolve).
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace sdt;
using namespace sdt::bench;

namespace {

struct Mechanism {
  const char *Label;
  core::SdtOptions Opts;
};

constexpr std::array<const char *, 5> PluginSets = {
    "", "coverage", "ibedges", "memcheck", "coverage,ibedges,memcheck"};
constexpr std::array<const char *, 5> SetLabels = {"none", "coverage",
                                                  "ibedges", "memcheck",
                                                  "all"};

uint64_t metric(const Measurement &M, const char *Key) {
  for (const auto &KV : M.PluginMetrics)
    if (KV.first == Key)
      return KV.second;
  return 0;
}

} // namespace

int main() {
  uint32_t Scale = scaleFromEnv(10);
  printHeader("E19 (instrumentation overhead)",
              "plugin probe cost per IB mechanism, x86 model", Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  // STRATAIB_PLUGINS pins every cell to one plugin set, collapsing the
  // sweep's plugin axis — the per-set acceptance comparisons below would
  // compare a set against itself.
  const char *PinEnv = std::getenv("STRATAIB_PLUGINS");
  const bool PluginsPinned = PinEnv && *PinEnv;
  if (PluginsPinned)
    std::printf("note: STRATAIB_PLUGINS='%s' pins every cell to one plugin "
                "set; the plugin axis\nbelow is collapsed and the overhead "
                "acceptance checks are skipped. Unset it to\nrun the real "
                "sweep.\n\n",
                PinEnv);

  std::vector<Mechanism> Mechanisms;
  {
    core::SdtOptions Disp;
    Disp.Mechanism = core::IBMechanism::Dispatcher;
    Mechanisms.push_back({"dispatcher", Disp});

    core::SdtOptions Ibtc;
    Ibtc.Mechanism = core::IBMechanism::Ibtc;
    Mechanisms.push_back({"ibtc", Ibtc});

    core::SdtOptions Sieve;
    Sieve.Mechanism = core::IBMechanism::Sieve;
    Mechanisms.push_back({"sieve", Sieve});

    core::SdtOptions Inline;
    Inline.Mechanism = core::IBMechanism::Ibtc;
    Inline.InlineCacheDepth = 2;
    Mechanisms.push_back({"ibtc+inline2", Inline});
  }

  const std::vector<std::string> Workloads = BenchContext::allWorkloadNames();

  ParallelRunner Runner(Ctx, "e19_instrumentation");
  // Ids[mech][workload][set]
  std::vector<std::vector<std::array<size_t, PluginSets.size()>>> Ids(
      Mechanisms.size());
  for (size_t MI = 0; MI != Mechanisms.size(); ++MI)
    for (const std::string &W : Workloads) {
      std::array<size_t, PluginSets.size()> Row;
      for (size_t SI = 0; SI != PluginSets.size(); ++SI)
        Row[SI] = Runner.enqueue(W, Model, Mechanisms[MI].Opts,
                                 PluginSets[SI]);
      Ids[MI].push_back(Row);
    }
  Runner.runAll();

  // Geos[mech][set]: geo-mean slowdown per cell group.
  std::vector<std::array<double, PluginSets.size()>> Geos(Mechanisms.size());
  // Nonzero plugin activity, summed over everything instrumented.
  uint64_t CoverageEdges = 0, IbEdgeExecs = 0, MemcheckLoads = 0;

  for (size_t MI = 0; MI != Mechanisms.size(); ++MI) {
    std::printf("--- mechanism: %s ---\n", Mechanisms[MI].Label);
    TableFormatter T({"benchmark", "none", "coverage", "ibedges", "memcheck",
                      "all", "all ovh%"});
    std::array<std::vector<Measurement>, PluginSets.size()> All;
    for (size_t WI = 0; WI != Workloads.size(); ++WI) {
      const std::array<size_t, PluginSets.size()> &Row = Ids[MI][WI];
      std::array<Measurement, PluginSets.size()> Ms;
      for (size_t SI = 0; SI != PluginSets.size(); ++SI) {
        Ms[SI] = Runner.result(Row[SI]);
        All[SI].push_back(Ms[SI]);
      }
      CoverageEdges += metric(Ms[4], "coverage.edges_hit");
      IbEdgeExecs += metric(Ms[4], "ibedges.total_executions");
      MemcheckLoads += metric(Ms[4], "memcheck.loads");
      double Ovh = Ms[0].SdtCycles
                       ? 100.0 * (static_cast<double>(Ms[4].SdtCycles) /
                                      static_cast<double>(Ms[0].SdtCycles) -
                                  1.0)
                       : 0.0;
      T.beginRow()
          .addCell(Workloads[WI])
          .addCell(Ms[0].slowdown(), 3)
          .addCell(Ms[1].slowdown(), 3)
          .addCell(Ms[2].slowdown(), 3)
          .addCell(Ms[3].slowdown(), 3)
          .addCell(Ms[4].slowdown(), 3)
          .addCell(Ovh, 1);
    }
    TableFormatter &GeoRow = T.beginRow().addCell(std::string("geo-mean"));
    for (size_t SI = 0; SI != PluginSets.size(); ++SI) {
      Geos[MI][SI] = geoMeanSlowdown(All[SI]);
      GeoRow.addCell(Geos[MI][SI], 3);
    }
    GeoRow.addCell(100.0 * (Geos[MI][4] / Geos[MI][0] - 1.0), 1);
    std::printf("%s\n", T.render().c_str());
  }

  std::printf("Per-mechanism relative overhead of the full plugin set "
              "(instrumented geo-mean\nover uninstrumented geo-mean):\n");
  for (size_t MI = 0; MI != Mechanisms.size(); ++MI)
    std::printf("  %-14s %+.1f%%\n", Mechanisms[MI].Label,
                100.0 * (Geos[MI][4] / Geos[MI][0] - 1.0));
  std::printf("\nShape targets: every instrumented set costs strictly more "
              "than none (probes\ncharge Instrument cycles on every fired "
              "event); the relative cost of the full\nset is highest on the "
              "fastest translator (ibtc-family) and lowest on the\n"
              "dispatcher, whose context-switch cycles dilute the same probe "
              "work.\n\n");

  if (PluginsPinned) {
    std::printf("acceptance: SKIPPED (STRATAIB_PLUGINS pinned by env)\n");
    return 0;
  }

  bool Ok = true;
  auto Check = [&Ok](bool Cond, const char *What) {
    std::printf("acceptance: %-44s %s\n", What, Cond ? "ok" : "FAIL");
    if (!Cond)
      Ok = false;
  };
  // Every instrumented set is strictly slower than the uninstrumented
  // baseline, under every mechanism.
  bool AllSlower = true;
  for (size_t MI = 0; MI != Mechanisms.size(); ++MI)
    for (size_t SI = 1; SI != PluginSets.size(); ++SI)
      AllSlower = AllSlower && Geos[MI][SI] > Geos[MI][0];
  Check(AllSlower, "every plugin set strictly slower than none");
  // Relative overhead ordering: the same probe cycles weigh more on the
  // fast ibtc baseline than on the slow dispatcher baseline.
  Check(Geos[1][4] / Geos[1][0] > Geos[0][4] / Geos[0][0],
        "relative 'all' overhead: ibtc > dispatcher");
  // The plugins actually observed events.
  Check(CoverageEdges > 0, "coverage plugin saw block entries");
  Check(IbEdgeExecs > 0, "ibedges plugin saw IB resolutions");
  Check(MemcheckLoads > 0, "memcheck plugin saw guest loads");

  if (!Ok)
    return 1;
  std::printf("acceptance: all checks passed\n");
  return 0;
}
