//===- bench/fig3_ibtc_size.cpp - E3: IBTC size sweep -------------*- C++ -*-===//
//
// Part of StrataIB.
//
// Reproduces the IBTC-size figure: slowdown vs. shared-table entries from
// 2^4 to 2^16 on the IB-heavy benchmarks, plus the 12-benchmark geo-mean.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <algorithm>
#include <map>
#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E3 (Fig: IBTC size)",
              "slowdown vs. shared IBTC entries, x86 model", Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  const std::vector<std::string> Shown = {"perlbmk", "gap",    "parser",
                                          "gcc",     "crafty", "vortex"};
  std::vector<std::string> Headers = {"entries"};
  for (const std::string &W : Shown)
    Headers.push_back(W);
  Headers.push_back("geomean-12");
  TableFormatter T(Headers);

  ParallelRunner Runner(Ctx, "fig3_ibtc_size");
  struct Row {
    uint32_t Entries;
    std::vector<size_t> Ids;
  };
  std::vector<Row> Rows;
  for (uint32_t Entries = 4; Entries <= 65536; Entries *= 4) {
    core::SdtOptions Opts;
    Opts.Mechanism = core::IBMechanism::Ibtc;
    Opts.IbtcShared = true;
    Opts.IbtcEntries = Entries;

    Row R;
    R.Entries = Entries;
    for (const std::string &W : BenchContext::allWorkloadNames())
      R.Ids.push_back(Runner.enqueue(W, Model, Opts));
    Rows.push_back(std::move(R));
  }
  Runner.runAll();

  std::vector<std::string> Names = BenchContext::allWorkloadNames();
  for (const Row &R : Rows) {
    std::vector<Measurement> All;
    std::map<std::string, double> Slowdowns;
    for (size_t I = 0; I != R.Ids.size(); ++I) {
      const Measurement &M = Runner.result(R.Ids[I]);
      All.push_back(M);
      Slowdowns[Names[I]] = M.slowdown();
    }
    T.beginRow().addCell(static_cast<uint64_t>(R.Entries));
    for (const std::string &W : Shown)
      T.addCell(Slowdowns.at(W), 3);
    T.addCell(geoMeanSlowdown(All), 3);
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: overhead falls steeply while conflict "
              "misses dominate, then\nflattens once the working set of "
              "IB targets fits; tiny tables are much worse\non the "
              "megamorphic interpreter proxies than on call-bound "
              "code.\n");
  return 0;
}
