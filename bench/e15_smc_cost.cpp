//===- bench/e15_smc_cost.cpp - Self-modifying-code cost x IB ----*- C++ -*-===//
//
// Part of StrataIB.
//
// E15: per-mechanism cost of self-modifying-code coherence. Runs the two
// self-patching guests (smcpatch: kernel rewriter; smctable: jump-table
// rewriter) plus gzip as a never-writes-code control under every IB
// mechanism, and reports slowdown alongside the invalidation counters.
// The control row pins the coherence machinery's zero-overhead claim:
// when no code write fires, the counters are zero and cycle counts are
// identical to a build without the subsystem. On the SMC guests the
// dispatcher pays only retranslation; IBTC adds table scrubbing; sieve
// pays most — its code-resident stubs must be unchained and their cache
// space released on every invalidation (the same ordering E14 measures
// for capacity evictions).
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

namespace {

struct MechConfig {
  const char *Name;
  core::IBMechanism Mechanism;
  unsigned InlineDepth;
};

core::SdtOptions makeOpts(const MechConfig &M) {
  core::SdtOptions Opts;
  Opts.Mechanism = M.Mechanism;
  Opts.InlineCacheDepth = M.InlineDepth;
  return Opts;
}

} // namespace

int main() {
  uint32_t Scale = scaleFromEnv(10);
  printHeader("E15 (Self-modifying code: invalidation cost x IB mechanism)",
              "self-patching guests vs a non-SMC control, x86 model",
              Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  // gzip is the control: same harness, zero code writes.
  const std::vector<std::string> Workloads = {"smcpatch", "smctable",
                                              "gzip"};

  const MechConfig Mechs[] = {
      {"dispatcher", core::IBMechanism::Dispatcher, 0},
      {"ibtc", core::IBMechanism::Ibtc, 0},
      {"sieve", core::IBMechanism::Sieve, 0},
      {"inline2+ibtc", core::IBMechanism::Ibtc, 2},
  };

  ParallelRunner Runner(Ctx, "e15_smc_cost");
  // Ids[workload][mech].
  std::vector<std::vector<size_t>> Ids;
  for (const std::string &W : Workloads) {
    std::vector<size_t> PerMech;
    for (const MechConfig &M : Mechs)
      PerMech.push_back(Runner.enqueue(W, Model, makeOpts(M)));
    Ids.push_back(std::move(PerMech));
  }
  Runner.runAll();

  // Table 1: slowdown vs native per workload and mechanism.
  {
    std::vector<std::string> Header{"workload"};
    for (const MechConfig &M : Mechs)
      Header.push_back(M.Name);
    TableFormatter T(Header);
    for (size_t W = 0; W != Workloads.size(); ++W) {
      T.beginRow().addCell(Workloads[W]);
      for (size_t M = 0; M != std::size(Mechs); ++M)
        T.addCell(Runner.result(Ids[W][M]).slowdown(), 3);
    }
    std::printf("Slowdown vs native (gzip = non-SMC control):\n%s\n",
                T.render().c_str());
  }

  // Table 2: the coherence work behind those slowdowns, under ibtc.
  {
    TableFormatter T({"workload (ibtc)", "code-writes", "frags-invalidated",
                      "stale-KB", "retranslations", "links-unlinked"});
    const size_t Ibtc = 1; // Mechs[1].
    for (size_t W = 0; W != Workloads.size(); ++W) {
      const Measurement &M = Runner.result(Ids[W][Ibtc]);
      T.beginRow()
          .addCell(Workloads[W])
          .addCell(M.Stats.CodeWriteInvalidations)
          .addCell(M.Stats.FragmentsInvalidatedByWrite)
          .addCell(static_cast<double>(M.Stats.StaleBytesDiscarded) / 1024.0,
                   1)
          .addCell(M.Stats.RetranslationsAfterEviction)
          .addCell(M.Stats.LinksUnlinked);
    }
    std::printf("%s\n", T.render().c_str());
  }

  std::printf(
      "Shape targets: the control row is all zeros (word-granular write\n"
      "detection means plain data stores cost nothing); every mechanism\n"
      "stays bit-transparent on the SMC guests (that is the bugfix under\n"
      "test); the dispatcher pays by far the most on the return-dense\n"
      "patcher (every invalidation throws its fragments back onto the\n"
      "slow dispatch path); and in the counter table retranslations track\n"
      "frags-invalidated one-for-one — invalidated code is re-built on\n"
      "next execution, never resurrected stale.\n");
  return 0;
}
