//===- bench/fig7_ibtc_vs_sieve.cpp - E7: mechanism head-to-head --*- C++ -*-===//
//
// Part of StrataIB.
//
// Reproduces the IBTC-vs-sieve comparison on both machine models: the
// data-cache-resident table against the instruction-cache-resident
// dispatch structure, equal capacity, per benchmark.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <array>
#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E7 (Fig: IBTC vs sieve)",
              "mechanism head-to-head on both machine models", Scale);
  BenchContext Ctx(Scale);

  core::SdtOptions Ibtc;
  Ibtc.Mechanism = core::IBMechanism::Ibtc;
  core::SdtOptions Sieve;
  Sieve.Mechanism = core::IBMechanism::Sieve;

  TableFormatter T({"benchmark", "x86-ibtc", "x86-sieve", "x86-winner",
                    "sparc-ibtc", "sparc-sieve", "sparc-winner"});
  std::vector<Measurement> XI, XS, SI, SS;
  unsigned X86IbtcWins = 0, SparcIbtcWins = 0;

  ParallelRunner Runner(Ctx, "fig7_ibtc_vs_sieve");
  std::vector<std::array<size_t, 4>> Ids;
  for (const std::string &W : BenchContext::allWorkloadNames())
    Ids.push_back({Runner.enqueue(W, arch::x86Model(), Ibtc),
                   Runner.enqueue(W, arch::x86Model(), Sieve),
                   Runner.enqueue(W, arch::sparcModel(), Ibtc),
                   Runner.enqueue(W, arch::sparcModel(), Sieve)});
  Runner.runAll();

  size_t Next = 0;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    const std::array<size_t, 4> &Cell = Ids[Next++];
    Measurement MXI = Runner.result(Cell[0]);
    Measurement MXS = Runner.result(Cell[1]);
    Measurement MSI = Runner.result(Cell[2]);
    Measurement MSS = Runner.result(Cell[3]);
    XI.push_back(MXI);
    XS.push_back(MXS);
    SI.push_back(MSI);
    SS.push_back(MSS);
    bool X86Ibtc = MXI.slowdown() <= MXS.slowdown();
    bool SparcIbtc = MSI.slowdown() <= MSS.slowdown();
    X86IbtcWins += X86Ibtc;
    SparcIbtcWins += SparcIbtc;
    T.beginRow()
        .addCell(W)
        .addCell(MXI.slowdown(), 3)
        .addCell(MXS.slowdown(), 3)
        .addCell(std::string(X86Ibtc ? "ibtc" : "sieve"))
        .addCell(MSI.slowdown(), 3)
        .addCell(MSS.slowdown(), 3)
        .addCell(std::string(SparcIbtc ? "ibtc" : "sieve"));
  }
  T.beginRow()
      .addCell(std::string("geo-mean"))
      .addCell(geoMeanSlowdown(XI), 3)
      .addCell(geoMeanSlowdown(XS), 3)
      .addCell(std::string("-"))
      .addCell(geoMeanSlowdown(SI), 3)
      .addCell(geoMeanSlowdown(SS), 3)
      .addCell(std::string("-"));

  std::printf("%s\n", T.render().c_str());
  std::printf("ibtc wins %u/12 on x86, %u/12 on sparc.\n", X86IbtcWins,
              SparcIbtcWins);
  std::printf("Shape targets: the two mechanisms are close overall but "
              "the per-benchmark and\nper-architecture winners differ — "
              "cache residency (D-cache table vs I-cache\nstubs) and "
              "flag-save cost move the crossover.\n");
  return 0;
}
