//===- bench/tab2_ibtc_hit_rates.cpp - E11: IBTC hit rates ---------*- C++ -*-===//
//
// Part of StrataIB.
//
// Reproduces the IBTC hit-rate table: probe hit rate per benchmark as
// the shared table grows from 64 to 16384 entries. Hit rate, not raw
// speed, is what the size sweep (E3) is made of.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "ParallelRunner.h"

#include "support/TableFormatter.h"

#include <cstdio>

using namespace sdt;
using namespace sdt::bench;

int main() {
  uint32_t Scale = scaleFromEnv(20);
  printHeader("E11 (Table: IBTC hit rates)",
              "probe hit rate vs shared-table entries, x86 model", Scale);
  BenchContext Ctx(Scale);
  arch::MachineModel Model = arch::x86Model();

  const uint32_t Sizes[] = {16, 64, 256, 1024, 4096};
  std::vector<std::string> Headers = {"benchmark", "ib/1k"};
  for (uint32_t S : Sizes)
    Headers.push_back("hit%" + std::to_string(S));
  TableFormatter T(Headers);

  ParallelRunner Runner(Ctx, "tab2_ibtc_hit_rates");
  std::vector<std::vector<size_t>> Ids;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    std::vector<size_t> Row;
    for (uint32_t S : Sizes) {
      core::SdtOptions Opts;
      Opts.Mechanism = core::IBMechanism::Ibtc;
      Opts.IbtcEntries = S;
      Row.push_back(Runner.enqueue(W, Model, Opts));
    }
    Ids.push_back(std::move(Row));
  }
  Runner.runAll();

  size_t Next = 0;
  for (const std::string &W : BenchContext::allWorkloadNames()) {
    T.beginRow().addCell(W);
    bool First = true;
    size_t SI = 0;
    const std::vector<size_t> &Row = Ids[Next++];
    for (uint32_t S : Sizes) {
      (void)S;
      const Measurement &M = Runner.result(Row[SI++]);
      if (First) {
        T.addCell(1000.0 *
                      static_cast<double>(M.NativeCti.indirectTotal()) /
                      static_cast<double>(M.Instructions),
                  2);
        First = false;
      }
      T.addCell(100.0 * M.mainHitRate(), 2);
    }
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Shape targets: hit rates rise monotonically with table "
              "size and saturate near\n100%% once conflicts vanish; the "
              "IB-light benchmarks have too few lookups for\nthe rate to "
              "matter.\n");
  return 0;
}
