//===- bench/ParallelRunner.h - Parallel experiment engine -------*- C++ -*-===//
//
// Part of StrataIB.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel experiment engine: experiment binaries enqueue their
/// measurement cells up front, runAll() fans them across a ThreadPool of
/// STRATAIB_JOBS workers, and the driver then reads results back by cell
/// id to print its tables. Because every cell's simulated results depend
/// only on the cell itself (each measure() builds its own TimingModel and
/// SdtEngine), parallel execution is bit-identical to serial — only the
/// wall-clock changes. Results are stored per cell id, so report order is
/// enqueue order no matter which worker finished first.
///
/// With STRATAIB_SUMMARY=<path> set, runAll() also writes a
/// machine-readable JSON summary of every cell (cycles, slowdowns, hit
/// rates, wall-clock); scripts/run_all_experiments.sh uses this to build
/// results/bench_summary.json.
///
//===----------------------------------------------------------------------===//

#ifndef STRATAIB_BENCH_PARALLELRUNNER_H
#define STRATAIB_BENCH_PARALLELRUNNER_H

#include "BenchHarness.h"

#include <string>
#include <vector>

namespace sdt {
namespace bench {

/// Fans measurement cells across worker threads with deterministic,
/// enqueue-ordered result collection.
class ParallelRunner {
public:
  /// \p ExperimentId names the experiment in the JSON summary (and is
  /// conventionally the binary name, e.g. "fig3_ibtc_size").
  ParallelRunner(BenchContext &Ctx, std::string ExperimentId);

  /// Queues a native-vs-translated measurement of \p Workload under
  /// (\p Model, \p Opts), optionally with instrumentation plugins
  /// attached (\p PluginSpec, comma-separated; STRATAIB_PLUGINS
  /// overrides it). Returns the cell id used to read the result back
  /// after runAll(). Cells with plugins get a " plugins(<spec>)" suffix
  /// on their summary config string so they never share a baseline key
  /// with uninstrumented cells.
  size_t enqueue(const std::string &Workload,
                 const arch::MachineModel &Model,
                 const core::SdtOptions &Opts,
                 const std::string &PluginSpec = "");

  /// Queues a native-only run (IB statistics, instruction counts).
  size_t enqueueNative(const std::string &Workload,
                       bool CollectSiteTargets = false);

  /// Executes every queued cell — across jobs() workers when more than
  /// one, serially otherwise — and blocks until all are done. Worker
  /// exceptions propagate here in enqueue order. Writes the JSON summary
  /// when STRATAIB_SUMMARY is set.
  void runAll();

  /// The measurement for cell \p Id (valid after runAll()).
  const Measurement &result(size_t Id) const;

  /// The native run for cell \p Id from enqueueNative().
  const vm::RunResult &nativeResult(size_t Id) const;

  size_t cellCount() const { return Cells.size(); }
  unsigned jobs() const { return Jobs; }
  double totalWallMs() const { return TotalWallMs; }

  /// Reads STRATAIB_JOBS; unset or 0 falls back to the hardware thread
  /// count (at least 1). STRATAIB_JOBS=1 forces serial execution.
  static unsigned jobsFromEnv();

  /// Writes the JSON summary to \p Path (normally runAll() does this via
  /// STRATAIB_SUMMARY; exposed for tests).
  void writeSummaryTo(const std::string &Path) const;

private:
  enum class CellKind { Sdt, Native };

  struct Cell {
    CellKind Kind = CellKind::Sdt;
    std::string Workload;
    arch::MachineModel Model;
    core::SdtOptions Opts;
    std::string PluginSpec;
    bool CollectSiteTargets = false;
    Measurement M;
    vm::RunResult NativeResult;
    double WallMs = 0.0;
    bool Done = false;
  };

  void runCell(size_t Id);
  std::string summaryJson() const;

  BenchContext &Ctx;
  std::string ExperimentId;
  unsigned Jobs;
  std::vector<Cell> Cells;
  double TotalWallMs = 0.0;
  bool Ran = false;
};

} // namespace bench
} // namespace sdt

#endif // STRATAIB_BENCH_PARALLELRUNNER_H
